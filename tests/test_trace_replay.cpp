// Replay-identity tests: the whole point of src/trace is that a replayed
// trace reproduces the live run's profile bit-for-bit. These tests assert
// that for every kernel, across page kinds, across platforms (a trace
// recorded while simulating the Opteron replays into the exact Xeon
// profile a live Xeon run produces), and across the full Figure 4 grid via
// the engine's trace store.
#include <gtest/gtest.h>

#include "exec/engine.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_mem.hpp"
#include "npb/npb.hpp"
#include "prof/profile.hpp"
#include "sim/thread_sim.hpp"
#include "trace/codec.hpp"
#include "trace/plan.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "trace/store.hpp"

namespace lpomp {
namespace {

struct LiveRun {
  npb::NpbResult result;
  trace::Trace trace;
};

LiveRun record_live(npb::Kernel kernel, npb::Klass klass,
                    const sim::ProcessorSpec& spec, unsigned threads,
                    PageKind pages, PageKind code_pages = PageKind::small4k,
                    std::uint64_t seed = 0x5eedULL) {
  trace::TraceRecorder recorder(threads);
  core::RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.page_kind = pages;
  cfg.code_page_kind = code_pages;
  cfg.sim = core::SimConfig{spec, sim::CostModel{}, seed};
  cfg.trace_sink = &recorder;
  LiveRun live;
  live.result = npb::run_kernel(kernel, klass, cfg);

  trace::TraceMeta meta;
  meta.kernel = npb::kernel_name(kernel);
  meta.klass = npb::klass_name(klass);
  meta.threads = threads;
  meta.page_kind = pages;
  meta.platform = spec.name;
  meta.code_page_kind = code_pages;
  meta.seed = seed;
  meta.verified = live.result.verified;
  meta.checksum = live.result.checksum;
  live.trace = recorder.finish(std::move(meta));
  return live;
}

void expect_profiles_identical(const prof::ProfileReport& live,
                               const prof::ProfileReport& replayed,
                               const std::string& what) {
  for (const char* event :
       {prof::ProfileReport::kCycles, prof::ProfileReport::kAccesses,
        prof::ProfileReport::kL1dMiss, prof::ProfileReport::kL2Miss,
        prof::ProfileReport::kDtlbL1Miss, prof::ProfileReport::kDtlbWalk4k,
        prof::ProfileReport::kDtlbWalk2m, prof::ProfileReport::kItlbMiss,
        prof::ProfileReport::kWalkLevels, prof::ProfileReport::kLongStalls}) {
    EXPECT_EQ(live.count(event), replayed.count(event))
        << what << ": " << event;
  }
}

TEST(TraceReplay, EveryKernelClassS) {
  for (npb::Kernel kernel : npb::all_kernels()) {
    for (PageKind pages : {PageKind::small4k, PageKind::large2m}) {
      const sim::ProcessorSpec spec = sim::ProcessorSpec::opteron270();
      const LiveRun live =
          record_live(kernel, npb::Klass::S, spec, 4, pages);
      ASSERT_TRUE(live.result.verified);
      EXPECT_GT(live.trace.meta.accesses, 0u);

      trace::ReplayDriver driver(trace::ReplayConfig{spec, {}, 0x5eedULL,
                                                     PageKind::small4k});
      const trace::ReplayOutcome out = driver.run(live.trace);
      const std::string what = std::string(npb::kernel_name(kernel)) + "/" +
                               page_kind_name(pages);
      EXPECT_EQ(out.simulated_seconds, live.result.simulated_seconds) << what;
      EXPECT_EQ(out.checksum, live.result.checksum) << what;
      EXPECT_TRUE(out.verified) << what;
      expect_profiles_identical(live.result.profile, out.profile, what);
    }
  }
}

// The stream does not depend on the simulated platform: a trace recorded
// under the Opteron simulation replays into the exact profile of a live
// Xeon run (different TLBs, caches, SMT model, seed and code pages).
TEST(TraceReplay, CrossPlatformCrossSeed) {
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();
  const sim::ProcessorSpec xeon = sim::ProcessorSpec::xeon_ht();

  const LiveRun recorded = record_live(npb::Kernel::CG, npb::Klass::S,
                                       opteron, 4, PageKind::small4k);

  const std::uint64_t seed = 0xabcdef;
  const PageKind code_pages = PageKind::large2m;
  core::RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.page_kind = PageKind::small4k;
  cfg.code_page_kind = code_pages;
  cfg.sim = core::SimConfig{xeon, sim::CostModel{}, seed};
  const npb::NpbResult live_xeon =
      npb::run_kernel(npb::Kernel::CG, npb::Klass::S, cfg);

  trace::ReplayDriver driver(
      trace::ReplayConfig{xeon, {}, seed, code_pages});
  const trace::ReplayOutcome out = driver.run(recorded.trace);
  EXPECT_EQ(out.simulated_seconds, live_xeon.simulated_seconds);
  expect_profiles_identical(live_xeon.profile, out.profile, "CG on xeon");
}

// Acceptance grid: every Figure 4 task (class S) executed via the trace
// store must be bit-identical to a forced live run — and the store must
// actually have replayed (not just re-recorded) the repeat streams.
TEST(TraceReplay, Figure4GridIdentity) {
  exec::SweepSpec spec = exec::SweepSpec::figure4(npb::Klass::S);
  spec.trace_backed = true;

  trace::TraceStore store;
  std::size_t replays = 0;
  for (const exec::RunTask& task : spec.expand()) {
    const exec::RunRecord via_store =
        exec::ExperimentEngine::execute_task(task, &store);
    exec::RunTask live_task = task;
    live_task.trace_backed = false;
    const exec::RunRecord live =
        exec::ExperimentEngine::execute_task(live_task);
    EXPECT_TRUE(live.same_result(via_store)) << task.label();
    // Store-backed repeats replay through the compiled plan ("analytic" by
    // default; "replay" is the --no-analytic interpreter spelling).
    if (via_store.trace_source == "analytic" ||
        via_store.trace_source == "replay") {
      ++replays;
    }
  }
  // The grid has two platforms: at minimum the second platform's
  // 1/2/4-thread points replay streams recorded on the first.
  EXPECT_GT(replays, 0u);
  EXPECT_GT(store.stats().hits, 0u);
}

// End-to-end through the engine: a trace-backed sweep equals a live sweep
// record-for-record, under every execution strategy — the default analytic
// schedule (leader records, followers fast-forward the compiled plan), the
// live-leader fused multi-lane schedule (Strategy::Multilane), and the
// store-based record/replay schedule (Strategy::Recorded).
TEST(TraceReplay, EngineSweepMatchesLive) {
  exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 4);
  spec.kernels = {npb::Kernel::CG, npb::Kernel::MG};
  spec.platforms.push_back(sim::ProcessorSpec::xeon_ht());

  spec.trace_backed = true;
  exec::ExperimentEngine analytic_eng;
  const exec::SweepResult analytic = analytic_eng.run(spec);

  exec::ExperimentEngine::Config lane_cfg;
  lane_cfg.strategy = exec::Strategy::Multilane;
  exec::ExperimentEngine fused(lane_cfg);
  const exec::SweepResult multilane = fused.run(spec);

  exec::ExperimentEngine::Config store_cfg;
  store_cfg.strategy = exec::Strategy::Recorded;
  exec::ExperimentEngine store_backed(store_cfg);
  const exec::SweepResult via_store = store_backed.run(spec);

  spec.trace_backed = false;
  exec::ExperimentEngine plain;
  const exec::SweepResult live = plain.run(spec);

  ASSERT_EQ(analytic.records.size(), live.records.size());
  ASSERT_EQ(multilane.records.size(), live.records.size());
  ASSERT_EQ(via_store.records.size(), live.records.size());
  std::size_t lanes_seen = 0;
  std::size_t analytic_seen = 0;
  for (std::size_t i = 0; i < live.records.size(); ++i) {
    EXPECT_TRUE(live.records[i].same_result(analytic.records[i]))
        << live.records[i].kernel;
    EXPECT_TRUE(live.records[i].same_result(multilane.records[i]))
        << live.records[i].kernel;
    EXPECT_TRUE(live.records[i].same_result(via_store.records[i]))
        << live.records[i].kernel;
    EXPECT_EQ(live.records[i].trace_source, "live");
    lanes_seen += multilane.records[i].trace_source == "lane" ? 1 : 0;
    analytic_seen += analytic.records[i].trace_source == "analytic" ? 1 : 0;
  }
  // The grid has two platforms per stream: the analytic schedule must have
  // served the second platform's points as plan-replayed followers...
  EXPECT_GT(analytic.fused_groups, 0u);
  EXPECT_EQ(analytic.fused_lanes, analytic_seen);
  EXPECT_GT(analytic_seen, 0u);
  EXPECT_EQ(analytic.replay_fallbacks, 0u);
  // ...recording each stream group's leader into the store exactly once.
  EXPECT_GT(analytic_eng.trace_store().stats().insertions, 0u);

  // The live-leader fused schedule covers the same points as sink-fed lanes...
  EXPECT_GT(multilane.fused_groups, 0u);
  EXPECT_EQ(multilane.fused_lanes, lanes_seen);
  EXPECT_GT(lanes_seen, 0u);
  EXPECT_EQ(multilane.replay_fallbacks, 0u);
  // ...without touching the codec or the store at all.
  EXPECT_EQ(fused.trace_store().stats().insertions, 0u);

  // The store-based schedule must have recorded and replayed for real.
  const trace::TraceStore::Stats ts = store_backed.trace_store().stats();
  EXPECT_GT(ts.hits, 0u);
  // The engine releases each stream after its last use, so nothing stays
  // resident once the sweep completes.
  EXPECT_GT(ts.released, 0u);
  EXPECT_EQ(ts.traces, 0u);
  EXPECT_EQ(via_store.fused_groups, 0u);
  // Deterministic JSON must be identical across all four strategies;
  // trace_source is host-only provenance.
  EXPECT_EQ(analytic.to_json(false), live.to_json(false));
  EXPECT_EQ(multilane.to_json(false), live.to_json(false));
  EXPECT_EQ(via_store.to_json(false), live.to_json(false));
}

// A corrupt trace in the store must not poison a fused group: the engine
// drops the entry, counts a fallback, and serves every grid point live —
// bit-identical to an untraced sweep.
TEST(TraceReplay, FusedGroupFallsBackOnCorruptTrace) {
  exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 2);
  spec.kernels = {npb::Kernel::CG};
  spec.platforms.push_back(sim::ProcessorSpec::xeon_ht());
  spec.trace_backed = true;

  exec::ExperimentEngine engine;
  // Preload both stream keys with garbage that decodes but cannot replay.
  for (const PageKind pages : {PageKind::small4k, PageKind::large2m}) {
    trace::Trace garbage;
    garbage.meta.kernel = "CG";
    garbage.meta.klass = "S";
    garbage.meta.threads = 2;
    garbage.meta.page_kind = pages;
    garbage.meta.verified = true;
    garbage.streams = {std::string("\x7f\x7f\x7f", 3),
                       std::string("\x7f\x7f\x7f", 3)};
    garbage.boundaries = {sim::BoundaryKind::end_run};
    engine.trace_store().insert(garbage.key(), garbage);
  }
  const exec::SweepResult traced = engine.run(spec);

  spec.trace_backed = false;
  exec::ExperimentEngine plain;
  const exec::SweepResult live = plain.run(spec);

  EXPECT_GT(traced.replay_fallbacks, 0u);
  ASSERT_EQ(traced.records.size(), live.records.size());
  for (std::size_t i = 0; i < live.records.size(); ++i) {
    EXPECT_TRUE(live.records[i].same_result(traced.records[i]))
        << live.records[i].kernel;
    EXPECT_TRUE(traced.records[i].ok);
  }
  EXPECT_EQ(traced.to_json(false), live.to_json(false));
}

// Same hardening on the static path: a stored trace the replay rejects is
// erased and the task re-runs live with trace_source="fallback".
TEST(TraceReplay, ExecuteTaskFallsBackOnCorruptTrace) {
  exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 2);
  spec.kernels = {npb::Kernel::MG};
  spec.trace_backed = true;
  const std::vector<exec::RunTask> tasks = spec.expand();
  ASSERT_FALSE(tasks.empty());
  const exec::RunTask& task = tasks.front();

  trace::TraceStore store;
  trace::Trace garbage;
  garbage.meta.kernel = "MG";
  garbage.meta.klass = "S";
  garbage.meta.threads = task.threads;
  garbage.meta.page_kind = task.page_kind;
  garbage.streams.assign(task.threads, std::string("\x7f\x7f\x7f", 3));
  garbage.boundaries = {sim::BoundaryKind::end_run};
  const std::string key = garbage.key();
  store.insert(key, garbage);

  const exec::RunRecord rec = exec::ExperimentEngine::execute_task(task, &store);
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.trace_source, "fallback");
  // The poisoned entry is gone; the next pass records a fresh trace.
  EXPECT_EQ(store.lookup(key), nullptr);
  const exec::RunRecord live = exec::ExperimentEngine::execute_task(task);
  EXPECT_TRUE(live.same_result(rec));
  const exec::RunRecord again = exec::ExperimentEngine::execute_task(task, &store);
  EXPECT_EQ(again.trace_source, "record");
  EXPECT_TRUE(live.same_result(again));
}

// --- corrupt-trace fuzz -----------------------------------------------------
//
// Two concrete corruptions of otherwise well-formed streams, each of which
// must be rejected at decode/compile time (TraceError) and degrade through
// the engine to trace_source="fallback" with counter-identical JSON — under
// both execution strategies (analytic plan compile and interpreted replay).

void expect_corrupt_falls_back(const exec::RunTask& task,
                               const trace::Trace& corrupt,
                               const std::string& what) {
  // The corruption must be rejected by both consumers of the bytes: the
  // plan compiler (analytic strategy) and the replay decode (interpreted).
  EXPECT_THROW(trace::TracePlan::compile(corrupt), trace::TraceError) << what;
  trace::ReplayDriver driver(trace::ReplayConfig{
      sim::ProcessorSpec::opteron270(), {}, 0x5eedULL, PageKind::small4k});
  EXPECT_THROW(driver.run(corrupt), trace::TraceError) << what;

  const exec::RunRecord live = exec::ExperimentEngine::execute_task(task);
  for (const bool analytic : {true, false}) {
    trace::TraceStore store;
    const std::string key = corrupt.key();
    store.insert(key, corrupt);
    const exec::RunRecord rec =
        exec::ExperimentEngine::execute_task(task, &store, analytic);
    EXPECT_TRUE(rec.ok) << what;
    EXPECT_EQ(rec.trace_source, "fallback")
        << what << (analytic ? " (analytic)" : " (interpreted)");
    // The poisoned entry is dropped and the result is bit-identical to a
    // live run — deterministic JSON included.
    EXPECT_EQ(store.lookup(key), nullptr) << what;
    EXPECT_TRUE(live.same_result(rec)) << what;
    EXPECT_EQ(live.to_json(false), rec.to_json(false)) << what;
  }
}

// Case 1: a genuine recorded stream truncated mid-pattern-block — the tail
// (END marker and trailing segments) is gone, so decode runs off the end.
TEST(TraceReplay, TruncatedPatternBlockFallsBack) {
  exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 2);
  spec.kernels = {npb::Kernel::MG};
  spec.trace_backed = true;
  const std::vector<exec::RunTask> tasks = spec.expand();
  ASSERT_FALSE(tasks.empty());
  const exec::RunTask& task = tasks.front();

  const LiveRun live =
      record_live(npb::Kernel::MG, npb::Klass::S,
                  sim::ProcessorSpec::opteron270(), task.threads,
                  task.page_kind);
  trace::Trace corrupt = live.trace;
  std::string& stream = corrupt.streams.back();
  ASSERT_GT(stream.size(), 16u);
  stream.resize(stream.size() / 2);

  expect_corrupt_falls_back(task, corrupt, "truncated pattern block");
}

// Case 2: a single bit flipped in a STRIDED block's opcode header turns it
// into an unknown opcode — framing validation must reject the stream, not
// misparse the payload bytes that follow.
TEST(TraceReplay, BitFlippedStrideHeaderFallsBack) {
  exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 2);
  spec.kernels = {npb::Kernel::CG};
  spec.trace_backed = true;
  const std::vector<exec::RunTask> tasks = spec.expand();
  ASSERT_FALSE(tasks.empty());
  const exec::RunTask& task = tasks.front();

  // Hand-built well-formed streams whose first event is a strided run, so
  // the byte to corrupt sits at a known offset. (The uncorrupted trace is
  // never replayed — the engine trusts store keys; this test is about the
  // corrupted bytes being *rejected*, not about stream content.)
  trace::Trace corrupt;
  corrupt.meta.kernel = task.kernel == npb::Kernel::CG ? "CG" : "MG";
  corrupt.meta.klass = "S";
  corrupt.meta.threads = task.threads;
  corrupt.meta.page_kind = task.page_kind;
  corrupt.meta.verified = true;
  corrupt.boundaries = {sim::BoundaryKind::end_run};
  for (unsigned t = 0; t < task.threads; ++t) {
    trace::ThreadEncoder enc;
    enc.touch_strided(0x10'0000, 300, 64, task.page_kind, Access::load);
    enc.touch_run(0x10'0000, 64, task.page_kind, Access::store);
    enc.segment();
    enc.finish();
    corrupt.streams.push_back(enc.take_bytes());
  }

  // The wire begins with the STRIDED opcode (0x05); one flipped bit makes
  // it an opcode the grammar does not define (0x25).
  std::string& stream = corrupt.streams.front();
  ASSERT_EQ(static_cast<std::uint8_t>(stream[0]), 0x05u);
  stream[0] = static_cast<char>(static_cast<std::uint8_t>(stream[0]) ^ 0x20);

  expect_corrupt_falls_back(task, corrupt, "bit-flipped stride header");
}

// Case 3: every irregular kernel's genuine recorded stream, truncated
// mid-stream. Their wire shape is singleton-dominated (GUPS random indexes
// and PC dependent chases give stride-RLE nothing to coalesce), so the
// decoder loses the framing structure regular kernels would fail on much
// earlier — the cut must still be rejected at compile and decode time and
// degrade to a live re-run with identical JSON under both strategies.
TEST(TraceReplay, IrregularKernelsCorruptTraceFallsBack) {
  for (npb::Kernel kernel :
       {npb::Kernel::GUPS, npb::Kernel::GT, npb::Kernel::PC}) {
    exec::SweepSpec spec = exec::SweepSpec::figure5(npb::Klass::S, 2);
    spec.kernels = {kernel};
    spec.trace_backed = true;
    const std::vector<exec::RunTask> tasks = spec.expand();
    ASSERT_FALSE(tasks.empty());
    const exec::RunTask& task = tasks.front();

    const LiveRun live =
        record_live(kernel, npb::Klass::S, sim::ProcessorSpec::opteron270(),
                    task.threads, task.page_kind);
    ASSERT_TRUE(live.result.verified);
    trace::Trace corrupt = live.trace;
    std::string& stream = corrupt.streams.back();
    ASSERT_GT(stream.size(), 16u);
    stream.resize(stream.size() / 2);

    expect_corrupt_falls_back(task, corrupt,
                              std::string("truncated ") +
                                  npb::kernel_name(kernel) + " stream");
  }
}

// Store bookkeeping: erase() drops an entry (freeing its budget share)
// without invalidating outstanding references, and is a no-op on misses.
TEST(TraceStore, EraseReleasesEntry) {
  const LiveRun live = record_live(npb::Kernel::CG, npb::Klass::S,
                                   sim::ProcessorSpec::opteron270(), 2,
                                   PageKind::small4k);
  trace::TraceStore store;
  const std::string key = live.trace.key();
  store.insert(key, live.trace);
  const std::shared_ptr<const trace::Trace> held = store.lookup(key);
  ASSERT_NE(held, nullptr);

  EXPECT_TRUE(store.erase(key));
  EXPECT_FALSE(store.erase(key));
  EXPECT_EQ(store.lookup(key), nullptr);
  const trace::TraceStore::Stats ts = store.stats();
  EXPECT_EQ(ts.traces, 0u);
  EXPECT_EQ(ts.bytes, 0u);
  EXPECT_EQ(ts.released, 1u);
  // The evicted trace is still alive through the shared_ptr.
  EXPECT_EQ(held->meta.kernel, "CG");
  EXPECT_FALSE(held->streams.empty());
}

// Replay must reject traces that do not fit the platform instead of
// crashing the simulator.
TEST(TraceReplay, RejectsImpossibleReplay) {
  const LiveRun live =
      record_live(npb::Kernel::MG, npb::Klass::S,
                  sim::ProcessorSpec::xeon_ht(), 8, PageKind::small4k);
  trace::ReplayDriver driver(trace::ReplayConfig{
      sim::ProcessorSpec::opteron270(), {}, 0x5eedULL, PageKind::small4k});
  EXPECT_THROW(driver.run(live.trace), trace::TraceError);

  trace::Trace broken = live.trace;
  broken.streams.pop_back();
  trace::ReplayDriver xeon_driver(trace::ReplayConfig{
      sim::ProcessorSpec::xeon_ht(), {}, 0x5eedULL, PageKind::small4k});
  EXPECT_THROW(xeon_driver.run(broken), trace::TraceError);
}

// --- event framing ----------------------------------------------------------

// A live touch_run/touch_strided must surface at the TraceSink as ONE run
// (or strided) event — never as n singles — and stride-8 strided calls must
// canonicalise to run framing. Any framing drift here silently changes the
// wire bytes of every recorded trace.
TEST(TraceFraming, LiveEntryPointsReportSingleEvents) {
  mem::PhysMem pm{MiB(32)};
  mem::AddressSpace space{pm};
  const mem::Region r = space.map_region(MiB(2), PageKind::small4k, "data");
  const sim::CostModel cm;
  const sim::ProcessorSpec spec = sim::ProcessorSpec::opteron270();
  sim::ThreadSim ts(cm, space, spec.itlb, spec.l1_dtlb, spec.l2_dtlb,
                    spec.l1d, spec.l2, 1);
  trace::TraceRecorder rec(1);
  ts.set_trace_sink(&rec, 0);

  ts.touch(r.base, PageKind::small4k, Access::load);
  ts.touch_run(r.base, 500, PageKind::small4k, Access::store);
  ts.touch_strided(r.base + 4096, 300, 64, PageKind::small4k, Access::load);
  ts.touch_strided(r.base, 200, 8, PageKind::small4k, Access::load);
  ts.add_compute(42);

  trace::TraceMeta meta;
  meta.kernel = "CG";
  meta.klass = "S";
  meta.threads = 1;
  const trace::Trace trace = rec.finish(std::move(meta));
  EXPECT_EQ(trace.meta.accesses, 1u + 500u + 300u + 200u);

  trace::ThreadDecoder dec(trace.streams[0]);
  const trace::Event expected[] = {
      trace::Event::touch_ev(r.base, PageKind::small4k, Access::load),
      trace::Event::run_ev(r.base, 500, PageKind::small4k, Access::store),
      trace::Event::strided_ev(r.base + 4096, 300, 64, PageKind::small4k,
                               Access::load),
      // stride 8 canonicalises to run framing at every layer.
      trace::Event::run_ev(r.base, 200, PageKind::small4k, Access::load),
      trace::Event::compute_ev(42),
  };
  for (const trace::Event& want : expected) {
    const trace::ThreadDecoder::Item item = dec.next();
    ASSERT_EQ(item.kind, trace::ThreadDecoder::ItemKind::event);
    EXPECT_EQ(item.event, want);
  }
  EXPECT_EQ(dec.next().kind, trace::ThreadDecoder::ItemKind::end);
}

// The replay side of the same invariant: ReplayDriver's pattern-block
// decode must report the identical event sequence, with identical framing,
// to an attached sink — so re-recording a replay reproduces the original
// trace byte-for-byte. CG covers runs and gathers; FT covers strided
// framing (its root-table scan records STRIDED events).
TEST(TraceFraming, ReplayReRecordsIdenticalBytes) {
  for (npb::Kernel kernel : {npb::Kernel::CG, npb::Kernel::FT}) {
    const LiveRun live =
        record_live(kernel, npb::Klass::S, sim::ProcessorSpec::opteron270(),
                    2, PageKind::small4k);

    trace::TraceRecorder rerec(live.trace.meta.threads);
    trace::ReplayConfig cfg;
    cfg.resink = &rerec;
    trace::ReplayDriver driver(cfg);
    driver.run(live.trace);

    const trace::Trace re = rerec.finish(live.trace.meta);
    ASSERT_EQ(re.streams.size(), live.trace.streams.size());
    for (std::size_t t = 0; t < re.streams.size(); ++t) {
      EXPECT_EQ(re.streams[t], live.trace.streams[t])
          << npb::kernel_name(kernel) << " thread " << t
          << ": replay re-record diverged from the original bytes";
    }
    EXPECT_EQ(re.boundaries, live.trace.boundaries);
    EXPECT_EQ(re.meta.accesses, live.trace.meta.accesses);
  }
}

}  // namespace
}  // namespace lpomp
