// Tests for the spinlock and the single/master work-sharing constructs.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/lock.hpp"
#include "core/runtime.hpp"

namespace lpomp::core {
namespace {

TEST(SpinLock, BasicLockUnlock) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;  // deliberately unsynchronised: the lock must protect it
  constexpr int kThreads = 4;
  constexpr long kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (long i = 0; i < kIncrements; ++i) {
        ScopedLock guard(lock);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLock, TryLockNonBlocking) {
  SpinLock lock;
  std::thread holder([&lock] {
    lock.lock();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(lock.try_lock());  // returns immediately, not held
  holder.join();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ThreadCtx, SingleRunsExactlyOnce) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.shared_pool_bytes = MiB(1);
  Runtime rt(cfg);
  std::atomic<int> runs{0};
  std::atomic<int> observers{0};
  rt.parallel([&](ThreadCtx& ctx) {
    ctx.single([&runs] { runs.fetch_add(1); });
    // The trailing barrier guarantees everyone sees the effect.
    if (runs.load() == 1) observers.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(observers.load(), 4);
}

TEST(ThreadCtx, MasterRunsOnTidZeroOnly) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.shared_pool_bytes = MiB(1);
  Runtime rt(cfg);
  std::atomic<unsigned> who{99};
  rt.parallel([&](ThreadCtx& ctx) {
    ctx.master([&who, &ctx] { who.store(ctx.tid()); });
  });
  EXPECT_EQ(who.load(), 0u);
}

TEST(ThreadCtx, CriticalSectionWithSpinLock) {
  // The omp-critical idiom: runtime-parallel region + shared SpinLock.
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.shared_pool_bytes = MiB(1);
  Runtime rt(cfg);
  SpinLock lock;
  long shared_sum = 0;
  rt.parallel([&](ThreadCtx&) {
    for (int i = 0; i < 10000; ++i) {
      ScopedLock guard(lock);
      ++shared_sum;
    }
  });
  EXPECT_EQ(shared_sum, 40000);
}

}  // namespace
}  // namespace lpomp::core
