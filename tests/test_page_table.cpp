// Unit tests for the x86-64-style radix page table.
#include <gtest/gtest.h>

#include "mem/page_table.hpp"

namespace lpomp::mem {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PhysMem pm_{MiB(32)};
};

TEST_F(PageTableTest, MapAndWalkSmallPage) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0x20'0000, PageKind::small4k);
  const WalkResult w = pt.walk(0x1000'0ABC);
  EXPECT_TRUE(w.present);
  EXPECT_EQ(w.kind, PageKind::small4k);
  EXPECT_EQ(w.paddr, 0x20'0ABCu);
  EXPECT_EQ(w.levels_touched, 4u);  // PML4 → PDPT → PD → PT
}

TEST_F(PageTableTest, MapAndWalkHugePage) {
  PageTable pt(pm_);
  pt.map(0x4000'0000, 0x80'0000, PageKind::large2m);
  const WalkResult w = pt.walk(0x4012'3456);
  EXPECT_TRUE(w.present);
  EXPECT_EQ(w.kind, PageKind::large2m);
  EXPECT_EQ(w.paddr, 0x80'0000u + 0x12'3456u);
  EXPECT_EQ(w.levels_touched, 3u);  // huge leaf one level up
}

TEST_F(PageTableTest, WalkFaultsOnUnmapped) {
  PageTable pt(pm_);
  const WalkResult w = pt.walk(0xdead'0000);
  EXPECT_FALSE(w.present);
  EXPECT_EQ(w.levels_touched, 1u);  // root entry absent
}

TEST_F(PageTableTest, WalkFaultsAtIntermediateDepth) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0, PageKind::small4k);
  // Same PD as the mapping above but different PT slot: walk reaches the
  // bottom level before faulting.
  const WalkResult w = pt.walk(0x1000'0000 + 5 * kSmallPageSize);
  EXPECT_FALSE(w.present);
  EXPECT_EQ(w.levels_touched, 4u);
}

TEST_F(PageTableTest, EntryAddressesReported) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0x20'0000, PageKind::small4k);
  const WalkResult w = pt.walk(0x1000'0000);
  for (unsigned l = 1; l < w.levels_touched; ++l) {
    EXPECT_NE(w.entry_addr[l], w.entry_addr[l - 1]);
  }
  // Entries are 8-byte slots inside 4 KB table frames.
  for (unsigned l = 0; l < w.levels_touched; ++l) {
    EXPECT_EQ(w.entry_addr[l] % 8, 0u);
  }
}

TEST_F(PageTableTest, AdjacentPagesShareBottomTableFrame) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0, PageKind::small4k);
  pt.map(0x1000'1000, kSmallPageSize, PageKind::small4k);
  const WalkResult a = pt.walk(0x1000'0000);
  const WalkResult b = pt.walk(0x1000'1000);
  // Same PT frame, consecutive 8-byte entries.
  EXPECT_EQ(b.entry_addr[3], a.entry_addr[3] + 8);
}

TEST_F(PageTableTest, UnmapRemovesTranslation) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0, PageKind::small4k);
  EXPECT_TRUE(pt.unmap(0x1000'0000));
  EXPECT_FALSE(pt.walk(0x1000'0000).present);
  EXPECT_FALSE(pt.unmap(0x1000'0000));
}

TEST_F(PageTableTest, RemapIsError) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0, PageKind::small4k);
  EXPECT_THROW(pt.map(0x1000'0000, kSmallPageSize, PageKind::small4k),
               std::logic_error);
}

TEST_F(PageTableTest, MisalignedMapIsError) {
  PageTable pt(pm_);
  EXPECT_THROW(pt.map(0x1000'0800, 0, PageKind::small4k), std::logic_error);
  EXPECT_THROW(pt.map(0x10'0000, 0, PageKind::large2m), std::logic_error);
}

TEST_F(PageTableTest, SmallUnderHugeLeafIsError) {
  PageTable pt(pm_);
  pt.map(0x4000'0000, 0, PageKind::large2m);
  EXPECT_THROW(pt.map(0x4000'0000, 0, PageKind::small4k), std::logic_error);
  EXPECT_THROW(pt.map(0x4000'1000, kSmallPageSize, PageKind::small4k),
               std::logic_error);
}

TEST_F(PageTableTest, MappedPageCounters) {
  PageTable pt(pm_);
  pt.map(0x1000'0000, 0, PageKind::small4k);
  pt.map(0x4000'0000, 0, PageKind::large2m);
  EXPECT_EQ(pt.mapped_pages(PageKind::small4k), 1u);
  EXPECT_EQ(pt.mapped_pages(PageKind::large2m), 1u);
  pt.unmap(0x4000'0000);
  EXPECT_EQ(pt.mapped_pages(PageKind::large2m), 0u);
}

TEST_F(PageTableTest, NodeAccountingGrowsWithSpread) {
  PageTable pt(pm_);
  const std::size_t base_nodes = pt.node_count();
  EXPECT_EQ(base_nodes, 1u);  // just the root
  pt.map(0, 0, PageKind::small4k);
  EXPECT_EQ(pt.node_count(), 4u);  // root + 3 interior/leaf tables
  // A second page far away in the address space needs its own subtree.
  pt.map(vaddr_t{1} << 40, kSmallPageSize, PageKind::small4k);
  EXPECT_EQ(pt.node_count(), 7u);
  EXPECT_EQ(pt.overhead_bytes(), 7 * kSmallPageSize);
}

TEST_F(PageTableTest, TableFramesComeFromPhysMem) {
  const std::size_t before = pm_.free_bytes();
  {
    PageTable pt(pm_);
    pt.map(0, 0x1000, PageKind::small4k);
    EXPECT_LT(pm_.free_bytes(), before);
  }
  // Destructor returns every node frame.
  EXPECT_EQ(pm_.free_bytes(), before);
}

TEST_F(PageTableTest, ManyMappingsRoundTrip) {
  PageTable pt(pm_);
  constexpr unsigned kPages = 1024;
  for (unsigned i = 0; i < kPages; ++i) {
    pt.map(0x2000'0000 + static_cast<vaddr_t>(i) * kSmallPageSize,
           static_cast<paddr_t>(i) * kSmallPageSize, PageKind::small4k);
  }
  for (unsigned i = 0; i < kPages; ++i) {
    const vaddr_t va =
        0x2000'0000 + static_cast<vaddr_t>(i) * kSmallPageSize + 123;
    const WalkResult w = pt.walk(va);
    ASSERT_TRUE(w.present);
    EXPECT_EQ(w.paddr, static_cast<paddr_t>(i) * kSmallPageSize + 123);
  }
  EXPECT_EQ(pt.mapped_pages(PageKind::small4k), kPages);
}

TEST_F(PageTableTest, MixedKindsCoexist) {
  PageTable pt(pm_);
  pt.map(0x4000'0000, 0, PageKind::large2m);
  pt.map(0x4020'0000, MiB(4), PageKind::small4k);  // next 2 MB slot
  EXPECT_TRUE(pt.walk(0x4000'0000).present);
  EXPECT_TRUE(pt.walk(0x4020'0000).present);
  EXPECT_EQ(pt.walk(0x4000'0000).kind, PageKind::large2m);
  EXPECT_EQ(pt.walk(0x4020'0000).kind, PageKind::small4k);
}

}  // namespace
}  // namespace lpomp::mem
