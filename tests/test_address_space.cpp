// Unit tests for the simulated per-process address space.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/hugetlbfs.hpp"

namespace lpomp::mem {
namespace {

TEST(AddressSpace, MapRoundsUpToPageSize) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region r = space.map_region(100, PageKind::small4k, "tiny");
  EXPECT_EQ(r.length, kSmallPageSize);
  const Region h = space.map_region(MiB(3), PageKind::large2m, "big");
  EXPECT_EQ(h.length, MiB(4));
}

TEST(AddressSpace, RegionsEagerlyPopulated) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region r = space.map_region(MiB(1), PageKind::small4k, "data");
  for (vaddr_t off = 0; off < r.length; off += kSmallPageSize) {
    EXPECT_TRUE(space.translate(r.base + off).present);
  }
}

TEST(AddressSpace, TranslateRespectsKind) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region s = space.map_region(MiB(1), PageKind::small4k, "s");
  const Region l = space.map_region(MiB(2), PageKind::large2m, "l");
  EXPECT_EQ(space.translate(s.base).kind, PageKind::small4k);
  EXPECT_EQ(space.translate(l.base).kind, PageKind::large2m);
  EXPECT_EQ(space.translate(s.base).levels_touched, 4u);
  EXPECT_EQ(space.translate(l.base).levels_touched, 3u);
}

TEST(AddressSpace, ArenasAreDisjoint) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region s = space.map_region(MiB(1), PageKind::small4k, "s");
  const Region l = space.map_region(MiB(2), PageKind::large2m, "l");
  EXPECT_GE(s.base, AddressSpace::kSmallArenaBase);
  EXPECT_LT(s.base + s.length, AddressSpace::kLargeArenaBase);
  EXPECT_GE(l.base, AddressSpace::kLargeArenaBase);
}

TEST(AddressSpace, SequentialRegionsDontOverlap) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region a = space.map_region(MiB(1) + 17, PageKind::small4k, "a");
  const Region b = space.map_region(KiB(64), PageKind::small4k, "b");
  EXPECT_GE(b.base, a.base + a.length);
}

TEST(AddressSpace, FindRegion) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  const Region a = space.map_region(MiB(1), PageKind::small4k, "alpha");
  const Region* hit = space.find_region(a.base + 12345);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, "alpha");
  EXPECT_EQ(space.find_region(a.base + a.length), nullptr);
  EXPECT_EQ(space.find_region(0), nullptr);
}

TEST(AddressSpace, UnmapReturnsFrames) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  // Invariant: free bytes plus page-table overhead; data frames must all
  // come back on unmap (table nodes are kept for reuse, as in a real kernel).
  const std::size_t before =
      pm.free_bytes() + space.page_table().overhead_bytes();
  const Region r = space.map_region(MiB(2), PageKind::large2m, "tmp");
  EXPECT_LT(pm.free_bytes() + space.page_table().overhead_bytes(), before);
  space.unmap_region(r.base);
  EXPECT_EQ(pm.free_bytes() + space.page_table().overhead_bytes(), before);
  EXPECT_FALSE(space.translate(r.base).present);
  EXPECT_EQ(space.mapped_bytes(), 0u);
}

TEST(AddressSpace, UnmapUnknownRegionThrows) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  EXPECT_THROW(space.unmap_region(0x1234), std::logic_error);
}

TEST(AddressSpace, MappedBytesPerKind) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  space.map_region(MiB(1), PageKind::small4k, "s");
  space.map_region(MiB(2), PageKind::large2m, "l");
  EXPECT_EQ(space.mapped_bytes(PageKind::small4k), MiB(1));
  EXPECT_EQ(space.mapped_bytes(PageKind::large2m), MiB(2));
  EXPECT_EQ(space.mapped_bytes(), MiB(3));
}

TEST(AddressSpace, ExhaustionThrowsAndRollsBack) {
  PhysMem pm(MiB(8));
  AddressSpace space(pm);
  const std::size_t before_free = pm.free_bytes();
  EXPECT_THROW(space.map_region(MiB(16), PageKind::small4k, "huge"),
               std::runtime_error);
  // Page-table nodes for the failed region may remain, but all data frames
  // must have been rolled back (no region leaked).
  EXPECT_EQ(space.mapped_bytes(), 0u);
  EXPECT_EQ(space.regions().size(), 0u);
  EXPECT_GE(pm.free_bytes() + space.page_table().overhead_bytes(),
            before_free);
}

TEST(AddressSpace, HugeTlbFsAsFrameSource) {
  PhysMem pm(MiB(32));
  HugeTlbFs fs(pm, 4);
  AddressSpace space(pm);
  const Region r = space.map_region(MiB(4), PageKind::large2m, "pool", &fs);
  EXPECT_EQ(fs.free_pages(), 2u);
  EXPECT_TRUE(space.translate(r.base + MiB(3)).present);
  space.unmap_region(r.base);
  EXPECT_EQ(fs.free_pages(), 4u);
}

TEST(AddressSpace, PoolExhaustionRollsBackToSource) {
  PhysMem pm(MiB(32));
  HugeTlbFs fs(pm, 2);
  AddressSpace space(pm);
  EXPECT_THROW(space.map_region(MiB(8), PageKind::large2m, "toobig", &fs),
               std::runtime_error);
  EXPECT_EQ(fs.free_pages(), 2u);  // partial population rolled back
}

TEST(AddressSpace, RegionsListing) {
  PhysMem pm(MiB(32));
  AddressSpace space(pm);
  space.map_region(MiB(1), PageKind::small4k, "one");
  space.map_region(MiB(2), PageKind::large2m, "two");
  const auto regions = space.regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].name, "one");
  EXPECT_EQ(regions[1].name, "two");
}

TEST(AddressSpace, DestructorReleasesEverything) {
  PhysMem pm(MiB(32));
  const std::size_t before = pm.free_bytes();
  {
    AddressSpace space(pm);
    space.map_region(MiB(4), PageKind::small4k, "a");
    space.map_region(MiB(4), PageKind::large2m, "b");
  }
  EXPECT_EQ(pm.free_bytes(), before);
}

}  // namespace
}  // namespace lpomp::mem
