// Tests for the intra-node MPI layer (the paper's §6 future work).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"

namespace lpomp::mpi {
namespace {

core::RuntimeConfig cfg(unsigned threads, PageKind kind = PageKind::small4k,
                        bool with_sim = false) {
  core::RuntimeConfig c;
  c.num_threads = threads;
  c.page_kind = kind;
  c.shared_pool_bytes = MiB(16);
  if (with_sim) c.sim = core::SimConfig{};
  return c;
}

TEST(Mpi, PingPongSmall) {
  core::Runtime rt(cfg(2));
  Communicator comm(rt);
  std::vector<double> got(4, 0.0);
  rt.parallel([&](core::ThreadCtx& ctx) {
    if (ctx.tid() == 0) {
      const double msg[4] = {1, 2, 3, 4};
      comm.send(ctx, 1, 7, msg, 4);
      double echo[4];
      comm.recv(ctx, 1, 8, echo, 4);
      for (int i = 0; i < 4; ++i) got[static_cast<std::size_t>(i)] = echo[i];
    } else {
      double buf[4];
      comm.recv(ctx, 0, 7, buf, 4);
      for (double& v : buf) v *= 10.0;
      comm.send(ctx, 0, 8, buf, 4);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{10, 20, 30, 40}));
}

TEST(Mpi, LargeMessageSpansManyChunks) {
  core::Runtime rt(cfg(2));
  Communicator comm(rt, /*chunk_doubles=*/64, /*slots=*/2);
  constexpr std::size_t kN = 10000;  // 157 chunks through a 2-slot ring
  std::vector<double> out(kN);
  rt.parallel([&](core::ThreadCtx& ctx) {
    if (ctx.tid() == 0) {
      std::vector<double> in(kN);
      std::iota(in.begin(), in.end(), 0.0);
      comm.send(ctx, 1, 1, in.data(), kN);
    } else {
      comm.recv(ctx, 0, 1, out.data(), kN);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i));
  }
  EXPECT_EQ(comm.doubles_transferred(), kN);
}

TEST(Mpi, BackToBackMessagesKeepOrder) {
  core::Runtime rt(cfg(2));
  Communicator comm(rt, 32, 2);
  std::vector<double> seen;
  rt.parallel([&](core::ThreadCtx& ctx) {
    if (ctx.tid() == 0) {
      for (int m = 0; m < 10; ++m) {
        std::vector<double> msg(100, static_cast<double>(m));
        comm.send(ctx, 1, m, msg.data(), msg.size());
      }
    } else {
      for (int m = 0; m < 10; ++m) {
        std::vector<double> buf(100);
        comm.recv(ctx, 0, m, buf.data(), buf.size());
        if (ctx.tid() == 1) seen.push_back(buf[50]);
      }
    }
  });
  ASSERT_EQ(seen.size(), 10u);
  for (int m = 0; m < 10; ++m) EXPECT_EQ(seen[static_cast<std::size_t>(m)], m);
}

TEST(Mpi, TagMismatchDetected) {
  core::Runtime rt(cfg(2));
  Communicator comm(rt);
  std::atomic<bool> threw{false};
  rt.parallel([&](core::ThreadCtx& ctx) {
    if (ctx.tid() == 0) {
      const double v = 1.0;
      comm.send(ctx, 1, 5, &v, 1);
    } else {
      double v;
      try {
        comm.recv(ctx, 0, 6, &v, 1);  // wrong tag
      } catch (const std::logic_error&) {
        threw.store(true);
        // Manually drain the in-flight chunk and ack it so the blocked
        // sender can complete and the region can join.
        auto& mbox = ctx.runtime().msg_channel();
        (void)mbox.recv_value<std::uint8_t>(1, 0);  // the ready token
        mbox.send_value<std::uint8_t>(1, 0, 2);     // ack
      }
    }
  });
  EXPECT_TRUE(threw.load());
}

TEST(Mpi, AllreduceSumsAcrossRanks) {
  for (unsigned ranks : {2u, 3u, 4u}) {
    core::Runtime rt(cfg(ranks));
    Communicator comm(rt, 16, 2);
    constexpr std::size_t kN = 100;
    std::vector<std::vector<double>> per_rank(
        ranks, std::vector<double>(kN));
    rt.parallel([&](core::ThreadCtx& ctx) {
      std::vector<double>& mine = per_rank[ctx.tid()];
      for (std::size_t i = 0; i < kN; ++i) {
        mine[i] = static_cast<double>(ctx.tid() + 1) * static_cast<double>(i);
      }
      comm.allreduce_sum(ctx, mine.data(), kN);
    });
    const double factor = ranks * (ranks + 1) / 2.0;  // Σ (r+1)
    for (unsigned r = 0; r < ranks; ++r) {
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_DOUBLE_EQ(per_rank[r][i], factor * static_cast<double>(i))
            << "rank " << r << " element " << i;
      }
    }
  }
}

TEST(Mpi, BcastFromNonZeroRoot) {
  core::Runtime rt(cfg(4));
  Communicator comm(rt, 32, 2);
  std::vector<std::vector<double>> per_rank(4, std::vector<double>(64, -1.0));
  rt.parallel([&](core::ThreadCtx& ctx) {
    std::vector<double>& mine = per_rank[ctx.tid()];
    if (ctx.tid() == 2) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = 100.0 + static_cast<double>(i);
      }
    }
    comm.bcast(ctx, 2, mine.data(), mine.size());
  });
  for (unsigned r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < 64; ++i) {
      ASSERT_EQ(per_rank[r][i], 100.0 + static_cast<double>(i));
    }
  }
}

TEST(Mpi, AllgatherDistributesSegments) {
  core::Runtime rt(cfg(4));
  Communicator comm(rt, 16, 2);
  constexpr std::size_t kPer = 40;
  std::vector<std::vector<double>> per_rank(4,
                                            std::vector<double>(4 * kPer, 0));
  rt.parallel([&](core::ThreadCtx& ctx) {
    std::vector<double>& mine = per_rank[ctx.tid()];
    for (std::size_t i = 0; i < kPer; ++i) {
      mine[ctx.tid() * kPer + i] = 1000.0 * ctx.tid() + static_cast<double>(i);
    }
    comm.allgather(ctx, mine.data(), kPer);
  });
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned seg = 0; seg < 4; ++seg) {
      for (std::size_t i = 0; i < kPer; ++i) {
        ASSERT_EQ(per_rank[r][seg * kPer + i],
                  1000.0 * seg + static_cast<double>(i))
            << "rank " << r << " segment " << seg;
      }
    }
  }
}

TEST(Mpi, SingleRankCollectivesAreNoops) {
  core::Runtime rt(cfg(1));
  Communicator comm(rt);
  double v[2] = {3.0, 4.0};
  rt.parallel([&](core::ThreadCtx& ctx) {
    comm.allreduce_sum(ctx, v, 2);
    comm.bcast(ctx, 0, v, 2);
  });
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 4.0);
}

TEST(Mpi, ChannelTrafficIsInstrumented) {
  core::Runtime rt(cfg(2, PageKind::small4k, /*with_sim=*/true));
  Communicator comm(rt, 512, 4);
  constexpr std::size_t kN = 8192;
  rt.parallel([&](core::ThreadCtx& ctx) {
    std::vector<double> buf(kN, 1.0);
    if (ctx.tid() == 0) {
      comm.send(ctx, 1, 0, buf.data(), kN);
    } else {
      comm.recv(ctx, 0, 0, buf.data(), kN);
    }
  });
  // Two instrumented copies of the payload (ring store + ring load).
  EXPECT_GE(rt.machine()->totals().accesses, 2 * kN);
}

TEST(Mpi, HugePageChannelVerifiesToo) {
  core::Runtime rt(cfg(4, PageKind::large2m, /*with_sim=*/true));
  Communicator comm(rt, 1024, 4);
  constexpr std::size_t kN = 4096;
  std::vector<std::vector<double>> per_rank(4, std::vector<double>(kN, 1.0));
  rt.parallel([&](core::ThreadCtx& ctx) {
    comm.allreduce_sum(ctx, per_rank[ctx.tid()].data(), kN);
  });
  for (unsigned r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(per_rank[r][i], 4.0);
    }
  }
  EXPECT_EQ(rt.machine()->totals().dtlb_walks[0], 0u);
}

TEST(Mpi, InvalidPeersRejected) {
  core::Runtime rt(cfg(2));
  Communicator comm(rt);
  rt.parallel([&](core::ThreadCtx& ctx) {
    if (ctx.tid() == 0) {
      double v = 0.0;
      EXPECT_THROW(comm.send(ctx, 0, 0, &v, 1), std::logic_error);  // self
      EXPECT_THROW(comm.send(ctx, 9, 0, &v, 1), std::logic_error);
      EXPECT_THROW(comm.recv(ctx, 9, 0, &v, 1), std::logic_error);
    }
  });
}

}  // namespace
}  // namespace lpomp::mpi
