// Property and robustness tests for the trace codec and file container:
// arbitrary event streams must round-trip exactly, realistic streams must
// compress hard, and corrupt/truncated inputs must be rejected with
// TraceError (never UB or a crash).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "npb/npb.hpp"
#include "support/rng.hpp"
#include "trace/codec.hpp"
#include "trace/io.hpp"
#include "trace/recorder.hpp"
#include "trace/trace.hpp"

namespace lpomp::trace {
namespace {

/// A stream item as fed to the encoder: an event or a segment marker.
struct RefItem {
  bool is_segment = false;
  Event event;
};

std::string encode(const std::vector<RefItem>& items) {
  ThreadEncoder enc;
  for (const RefItem& item : items) {
    if (item.is_segment) {
      enc.segment();
      continue;
    }
    switch (item.event.kind) {
      case Event::Kind::touch:
        enc.touch(item.event.addr, item.event.page, item.event.access);
        break;
      case Event::Kind::run:
        enc.touch_run(item.event.addr, item.event.arg, item.event.page,
                      item.event.access);
        break;
      case Event::Kind::compute:
        enc.compute(item.event.arg);
        break;
      case Event::Kind::strided:
        enc.touch_strided(item.event.addr, item.event.arg, item.event.stride,
                          item.event.page, item.event.access);
        break;
    }
  }
  enc.finish();
  return enc.bytes();
}

/// The canonical wire framing of an event: the encoder rewrites stride-8
/// strided batches to RUN and one-element batches to TOUCH before anything
/// reaches the wire, so decoded streams report the canonical form. The
/// mapping is access-preserving — the simulator treats both framings
/// identically — and it is what makes a replay's re-record byte-identical.
Event canonical(Event e) {
  if (e.kind == Event::Kind::strided && e.stride == 8) {
    e.kind = Event::Kind::run;
  }
  if ((e.kind == Event::Kind::run || e.kind == Event::Kind::strided) &&
      e.arg == 1) {
    return Event::touch_ev(e.addr, e.page, e.access);
  }
  return e;
}

void expect_roundtrip(const std::vector<RefItem>& items) {
  const std::string bytes = encode(items);
  ThreadDecoder dec(bytes);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const ThreadDecoder::Item got = dec.next();
    if (items[i].is_segment) {
      ASSERT_EQ(got.kind, ThreadDecoder::ItemKind::segment) << "item " << i;
    } else {
      ASSERT_EQ(got.kind, ThreadDecoder::ItemKind::event) << "item " << i;
      ASSERT_EQ(got.event, canonical(items[i].event)) << "item " << i;
    }
  }
  EXPECT_EQ(dec.next().kind, ThreadDecoder::ItemKind::end);
}

TEST(TraceCodec, VarintRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                          16384ULL, 0xdeadbeefULL, ~0ULL}) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(TraceCodec, ZigzagRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 4096LL, -4096LL,
                         (1LL << 46), -(1LL << 46)}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

TEST(TraceCodec, EmptyStream) {
  ThreadEncoder enc;
  enc.finish();
  ThreadDecoder dec(enc.bytes());
  EXPECT_EQ(dec.next().kind, ThreadDecoder::ItemKind::end);
  EXPECT_THROW(dec.next(), TraceError);
}

TEST(TraceCodec, MixedEventsRoundTrip) {
  std::vector<RefItem> items;
  items.push_back({false, Event::touch_ev(0x10000000, PageKind::small4k,
                                          Access::load)});
  items.push_back({false, Event::touch_ev(0x10000008, PageKind::small4k,
                                          Access::store)});
  items.push_back({false, Event::compute_ev(12345)});
  items.push_back({false, Event::run_ev(0x80000000, 1000, PageKind::large2m,
                                        Access::load)});
  items.push_back({true, Event{}});
  items.push_back({false, Event::touch_ev(0x10000000, PageKind::small4k,
                                          Access::ifetch)});
  items.push_back({true, Event{}});
  expect_roundtrip(items);
}

/// Random mixture of sequential runs, strided scans, random gathers,
/// computes and segment markers — the adversarial input for the encoder's
/// head/repeat heuristics.
std::vector<RefItem> random_stream(std::uint64_t seed) {
  Rng rng(seed * 0x1234567);
  std::vector<RefItem> items;
  // A few "arrays" far apart, like a real pool layout.
  const vaddr_t bases[] = {0x10000000, 0x10400000, 0x13000000, 0x80000000};
  while (items.size() < 50000) {
    const unsigned choice = static_cast<unsigned>(rng.next_below(10));
    const vaddr_t base = bases[rng.next_below(4)];
    const PageKind kind =
        base >= 0x80000000 ? PageKind::large2m : PageKind::small4k;
    const Access access =
        rng.next_below(3) == 0 ? Access::store : Access::load;
    if (choice < 4) {
      // Sequential burst.
      vaddr_t a = base + rng.next_below(1 << 20) * 8;
      const std::size_t n = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < n; ++i, a += 8) {
        items.push_back({false, Event::touch_ev(a, kind, access)});
      }
    } else if (choice < 6) {
      // Strided scan.
      vaddr_t a = base + rng.next_below(1 << 16) * 8;
      const std::uint64_t stride = 8 * (1 + rng.next_below(4096));
      const std::size_t n = 1 + rng.next_below(32);
      for (std::size_t i = 0; i < n; ++i, a += stride) {
        items.push_back({false, Event::touch_ev(a, kind, access)});
      }
    } else if (choice < 8) {
      // Random gather.
      const std::size_t n = 1 + rng.next_below(32);
      for (std::size_t i = 0; i < n; ++i) {
        items.push_back(
            {false, Event::touch_ev(base + rng.next_below(1 << 22) * 8,
                                    kind, access)});
      }
    } else if (choice == 8) {
      if (rng.next_below(2) == 0) {
        items.push_back(
            {false, Event::run_ev(base + rng.next_below(1 << 20) * 8,
                                  1 + rng.next_below(5000), kind, access)});
      } else {
        // Strided run record: forward, backward, or zero byte strides
        // (never 8 — the encoder canonicalises that to a RUN).
        static constexpr std::int64_t kStrides[] = {-4096, -64, -16, 0,
                                                    16,    64,  520, 4096};
        items.push_back(
            {false,
             Event::strided_ev(base + rng.next_below(1 << 20) * 8,
                               rng.next_below(300), kStrides[rng.next_below(8)],
                               kind, access)});
      }
    } else {
      items.push_back({false, Event::compute_ev(rng.next_below(1 << 30))});
      if (rng.next_below(50) == 0) items.push_back({true, Event{}});
    }
  }
  return items;
}

// The property test: whatever the encoder's head/repeat heuristics do
// internally, the decoded stream must be the input, exactly.
TEST(TraceCodec, RandomStreamsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_roundtrip(random_stream(seed));
  }
}

// next_block() must deliver exactly the stream next() does, just batched:
// expanding every pattern block (each period advances a slot's address by
// its period_inc) reproduces the per-event decode. Events are compared in
// simulator semantics — a touch and a 1-element run are the same access.
TEST(TraceCodec, BlockDecodeMatchesEventDecode) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string bytes = encode(random_stream(seed));
    ThreadDecoder by_event(bytes);
    ThreadDecoder by_block(bytes);

    auto expect_access = [&by_event](vaddr_t addr, std::uint64_t n,
                                     std::int64_t stride, PageKind page,
                                     Access access) {
      const ThreadDecoder::Item ref = by_event.next();
      ASSERT_EQ(ref.kind, ThreadDecoder::ItemKind::event);
      ASSERT_NE(ref.event.kind, Event::Kind::compute);
      ASSERT_EQ(ref.event.addr, addr);
      ASSERT_EQ(ref.event.kind == Event::Kind::touch ? 1 : ref.event.arg, n);
      ASSERT_EQ(ref.event.kind == Event::Kind::strided ? ref.event.stride : 8,
                stride);
      ASSERT_EQ(ref.event.page, page);
      ASSERT_EQ(ref.event.access, access);
    };

    ThreadDecoder::Block block;
    while (by_block.next_block(block)) {
      if (block.kind == ThreadDecoder::Block::Kind::segment) {
        ASSERT_EQ(by_event.next().kind, ThreadDecoder::ItemKind::segment);
        continue;
      }
      ASSERT_EQ(block.kind, ThreadDecoder::Block::Kind::pattern);
      ASSERT_GE(block.periods, 1u);
      std::vector<ThreadDecoder::PatternSlot> slots = block.pattern;
      for (std::uint64_t rep = 0; rep < block.periods; ++rep) {
        for (ThreadDecoder::PatternSlot& s : slots) {
          if (s.is_compute) {
            const ThreadDecoder::Item ref = by_event.next();
            ASSERT_EQ(ref.kind, ThreadDecoder::ItemKind::event);
            ASSERT_EQ(ref.event.kind, Event::Kind::compute);
            ASSERT_EQ(ref.event.arg, s.cycles);
          } else {
            expect_access(s.addr, s.n, s.stride, s.page, s.access);
            s.addr += static_cast<vaddr_t>(s.period_inc);
          }
        }
      }
    }
    ASSERT_EQ(block.kind, ThreadDecoder::Block::Kind::end);
    EXPECT_EQ(by_event.next().kind, ThreadDecoder::ItemKind::end);
  }
}

TEST(TraceCodec, PeriodicPatternsCompress) {
  // A period-3 stencil-like pattern over 30k touches must collapse to well
  // under a byte per access.
  std::vector<RefItem> items;
  vaddr_t a = 0x10000000;
  for (int i = 0; i < 10000; ++i, a += 8) {
    items.push_back({false, Event::touch_ev(a, PageKind::small4k,
                                            Access::load)});
    items.push_back({false, Event::touch_ev(a + 0x20000, PageKind::small4k,
                                            Access::load)});
    items.push_back({false, Event::touch_ev(a + 0x40000, PageKind::small4k,
                                            Access::store)});
  }
  const std::string bytes = encode(items);
  EXPECT_LT(bytes.size(), items.size() / 10);
  expect_roundtrip(items);
}

TEST(TraceCodec, TruncatedStreamThrows) {
  std::vector<RefItem> items;
  for (int i = 0; i < 100; ++i) {
    items.push_back({false, Event::touch_ev(0x10000000 + i * 8192,
                                            PageKind::small4k,
                                            Access::load)});
  }
  const std::string bytes = encode(items);
  // Every proper prefix must either throw or end the stream early — and a
  // prefix that cuts the END marker must throw.
  const std::string cut = bytes.substr(0, bytes.size() - 1);
  ThreadDecoder dec(cut);
  EXPECT_THROW(
      {
        while (true) {
          if (dec.next().kind == ThreadDecoder::ItemKind::end) break;
        }
      },
      TraceError);
}

TEST(TraceCodec, StridedEventsRoundTrip) {
  std::vector<RefItem> items;
  const vaddr_t base = 0x10000000;
  // Forward, backward, zero, sub-line, page-striding, and degenerate counts.
  for (std::int64_t stride : {-8192LL, -520LL, -16LL, 0LL, 16LL, 72LL,
                              4096LL, 1LL << 30}) {
    for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 63ULL, 1000ULL}) {
      items.push_back({false, Event::strided_ev(base + 0x100000, n, stride,
                                                PageKind::small4k,
                                                Access::load)});
      items.push_back({false, Event::strided_ev(base, n, stride,
                                                PageKind::large2m,
                                                Access::store)});
    }
  }
  expect_roundtrip(items);
}

TEST(TraceCodec, ZeroLengthRunsRoundTrip) {
  // n = 0 runs are legal records (a loop whose trip count collapsed to
  // nothing); they must round-trip and must not corrupt head prediction.
  std::vector<RefItem> items;
  for (int i = 0; i < 100; ++i) {
    items.push_back({false, Event::run_ev(0x10000000 + i * 4096, 0,
                                          PageKind::small4k, Access::load)});
    items.push_back({false, Event::run_ev(0x10000000 + i * 4096, 5,
                                          PageKind::small4k, Access::load)});
    items.push_back({false, Event::strided_ev(0x10002000 + i * 4096, 0, -64,
                                              PageKind::small4k,
                                              Access::store)});
  }
  expect_roundtrip(items);
}

// A stream whose period is exactly kRing (64, the maximum the encoder's
// ring can discover): 64 distinct touch symbols repeating with a constant
// per-period advance must collapse into one REPEAT record and round-trip
// through both decode paths.
TEST(TraceCodec, MaxPeriodRleRoundTrip) {
  std::vector<RefItem> items;
  constexpr int kPeriod = 64;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int j = 0; j < kPeriod; ++j) {
      // Distinct intra-period deltas (triangular offsets) so no shorter
      // period divides the pattern; each period advances by 8 bytes.
      const vaddr_t addr = 0x10000000 +
                           static_cast<vaddr_t>(j * (j + 1) / 2) * 8 +
                           static_cast<vaddr_t>(rep) * 8;
      items.push_back({false, Event::touch_ev(addr, PageKind::small4k,
                                              Access::load)});
    }
  }
  const std::string bytes = encode(items);
  // 12800 touches with a discoverable period must compress far below a
  // byte per access.
  EXPECT_LT(bytes.size(), items.size() / 8);
  expect_roundtrip(items);
}

// More concurrently live address sequences than the encoder has heads (8):
// every event evicts a head (all bases are > 1 MiB apart, the far-head
// threshold), which is the worst case for delta prediction. Must still
// round-trip exactly through both decode paths.
TEST(TraceCodec, HeadEvictionChurnRoundTrip) {
  std::vector<RefItem> items;
  constexpr int kSequences = 13;  // > kHeads == 8
  vaddr_t cursor[kSequences];
  for (int s = 0; s < kSequences; ++s) {
    cursor[s] = 0x10000000 + static_cast<vaddr_t>(s) * MiB(2);
  }
  for (int i = 0; i < 5000; ++i) {
    const int s = i % kSequences;
    items.push_back({false, Event::touch_ev(cursor[s], PageKind::small4k,
                                            Access::load)});
    cursor[s] += 8;
  }
  expect_roundtrip(items);

  // Same churn through the block decoder.
  const std::string bytes = encode(items);
  ThreadDecoder by_block(bytes);
  ThreadDecoder::Block block;
  std::size_t accesses = 0;
  while (by_block.next_block(block)) {
    ASSERT_EQ(block.kind, ThreadDecoder::Block::Kind::pattern);
    for (const ThreadDecoder::PatternSlot& s : block.pattern) {
      ASSERT_FALSE(s.is_compute);
      accesses += static_cast<std::size_t>(s.n) * block.periods;
    }
  }
  EXPECT_EQ(accesses, items.size());
}

// stride == 8 is canonicalised to RUN framing at the encoder entry point:
// byte-identical output, and the decoded stream reports run events.
TEST(TraceCodec, StrideEightCanonicalisedToRun) {
  ThreadEncoder as_strided;
  ThreadEncoder as_run;
  for (int i = 0; i < 50; ++i) {
    const vaddr_t addr = 0x10000000 + static_cast<vaddr_t>(i) * 4096;
    as_strided.touch_strided(addr, 17, 8, PageKind::small4k, Access::load);
    as_run.touch_run(addr, 17, PageKind::small4k, Access::load);
  }
  as_strided.finish();
  as_run.finish();
  ASSERT_EQ(as_strided.bytes(), as_run.bytes());

  ThreadDecoder dec(as_run.bytes());
  for (int i = 0; i < 50; ++i) {
    const ThreadDecoder::Item item = dec.next();
    ASSERT_EQ(item.kind, ThreadDecoder::ItemKind::event);
    EXPECT_EQ(item.event.kind, Event::Kind::run);
    EXPECT_EQ(item.event.stride, 8);
  }
  EXPECT_EQ(dec.next().kind, ThreadDecoder::ItemKind::end);
}

// n == 1 batches are canonicalised to TOUCH framing regardless of stride:
// byte-identical to encoding the touch directly, and the decoded stream
// reports touch events. Without this a replayed trace could not re-record
// byte-identically — a one-element slot is indistinguishable from a touch.
TEST(TraceCodec, OneElementBatchCanonicalisedToTouch) {
  ThreadEncoder as_batch;
  ThreadEncoder as_touch;
  for (int i = 0; i < 50; ++i) {
    const vaddr_t addr = 0x10000000 + static_cast<vaddr_t>(i) * 4096;
    if (i % 2 == 0) {
      as_batch.touch_run(addr, 1, PageKind::small4k, Access::load);
    } else {
      as_batch.touch_strided(addr, 1, -520, PageKind::small4k, Access::load);
    }
    as_touch.touch(addr, PageKind::small4k, Access::load);
  }
  as_batch.finish();
  as_touch.finish();
  ASSERT_EQ(as_batch.bytes(), as_touch.bytes());

  ThreadDecoder dec(as_touch.bytes());
  for (int i = 0; i < 50; ++i) {
    const ThreadDecoder::Item item = dec.next();
    ASSERT_EQ(item.kind, ThreadDecoder::ItemKind::event);
    EXPECT_EQ(item.event.kind, Event::Kind::touch);
  }
  EXPECT_EQ(dec.next().kind, ThreadDecoder::ItemKind::end);
}

TEST(TraceCodec, TruncatedStridedRunThrows) {
  ThreadEncoder enc;
  enc.touch_strided(0x10000000, 100, 4096, PageKind::small4k, Access::load);
  enc.finish();
  const std::string bytes = enc.bytes();
  // Every proper prefix must throw (STRIDED carries opcode + flags + delta
  // + count + stride; cutting any of them is a truncation, and the missing
  // END marker makes even the full first record unterminated).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ThreadDecoder dec(bytes.substr(0, cut));
    EXPECT_THROW(
        {
          while (dec.next().kind != ThreadDecoder::ItemKind::end) {
          }
        },
        TraceError)
        << "cut at " << cut;
  }
}

TEST(TraceCodec, RepeatBeforeHistoryThrows) {
  // A REPEAT record with no prior symbols is malformed.
  std::string bytes;
  bytes.push_back('\x00');  // REPEAT
  put_varint(bytes, 1);     // period
  put_varint(bytes, 5);     // count
  bytes.push_back('\x02');  // END
  ThreadDecoder dec(bytes);
  EXPECT_THROW(dec.next(), TraceError);
}

// --- file container ---------------------------------------------------------

Trace sample_trace() {
  Trace trace;
  trace.meta.kernel = "CG";
  trace.meta.klass = "S";
  trace.meta.threads = 2;
  trace.meta.page_kind = PageKind::large2m;
  trace.meta.platform = "opteron270";
  trace.meta.code_page_kind = PageKind::small4k;
  trace.meta.seed = 0x5eed;
  trace.meta.verified = true;
  trace.meta.checksum = 3.14159;
  trace.meta.accesses = 123456;
  for (unsigned t = 0; t < 2; ++t) {
    ThreadEncoder enc;
    for (int i = 0; i < 1000; ++i) {
      enc.touch(0x10000000 + (t + 1) * i * 8, PageKind::large2m,
                Access::load);
    }
    enc.segment();
    enc.compute(42);
    enc.segment();
    enc.finish();
    trace.streams.push_back(enc.take_bytes());
  }
  trace.boundaries = {sim::BoundaryKind::begin_parallel,
                      sim::BoundaryKind::end_parallel};
  return trace;
}

TEST(TraceIo, FileRoundTrip) {
  const Trace trace = sample_trace();
  std::stringstream ss;
  write_trace(ss, trace);
  const Trace back = read_trace(ss);
  EXPECT_EQ(back.meta, trace.meta);
  EXPECT_EQ(back.streams, trace.streams);
  EXPECT_EQ(back.boundaries, trace.boundaries);
  EXPECT_EQ(back.key(), "CG.S/2T/2MB");
}

TEST(TraceIo, TruncationRejectedAtEveryLength) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  const std::string full = ss.str();
  // Cut at a spread of byte offsets including the header, the metadata and
  // the trailing checksum.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                          std::size_t{20}, full.size() / 2, full.size() - 9,
                          full.size() - 1}) {
    std::stringstream damaged(full.substr(0, cut));
    EXPECT_THROW(read_trace(damaged), TraceError) << "cut at " << cut;
  }
}

TEST(TraceIo, CorruptionRejected) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  const std::string full = ss.str();

  {  // bad magic
    std::string bad = full;
    bad[0] ^= 0x01;
    std::stringstream is(bad);
    EXPECT_THROW(read_trace(is), TraceError);
  }
  {  // unknown version
    std::string bad = full;
    bad[8] = static_cast<char>(0x7f);
    std::stringstream is(bad);
    EXPECT_THROW(read_trace(is), TraceError);
  }
  {  // payload bit flip → checksum mismatch (or a structural error)
    std::string bad = full;
    bad[full.size() / 2] ^= 0x10;
    std::stringstream is(bad);
    EXPECT_THROW(read_trace(is), TraceError);
  }
  {  // trailing garbage
    std::string bad = full + "x";
    std::stringstream is(bad);
    EXPECT_THROW(read_trace(is), TraceError);
  }
}

// Systematic single-bit corruption: the FNV-1a container checksum (or a
// structural check it backstops) must reject a flip at *every* byte offset
// — stream payloads, metadata, lengths, and the checksum itself — and must
// fail via TraceError, never UB, OOM, or a silent wrong read.
TEST(TraceIo, BitFlipRejectedAtEveryOffset) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  const std::string full = ss.str();
  for (std::size_t off = 0; off < full.size(); ++off) {
    std::string bad = full;
    bad[off] ^= 0x04;
    std::stringstream is(bad);
    EXPECT_THROW(read_trace(is), TraceError) << "flip at offset " << off;
  }
}

// --- kernel-harvested fuzz corpus -------------------------------------------
// The irregular kernels emit the codec's worst case: singleton-dominated
// streams where stride-RLE degenerates to per-event framing (GUPS random
// indexes, PC dependent chases, GT gathers). The synthetic fuzz above never
// produces this density of TOUCH opcodes with large zigzag deltas, so the
// corpus here is harvested from the kernels' real recorded streams: the
// clean bytes must decode to END, and every sampled truncation or bit flip
// must either decode cleanly or throw TraceError — never crash, hang, or
// run off the buffer (the sanitizer CI job runs this too).

std::vector<std::string> harvest_streams(npb::Kernel kernel,
                                         std::uint64_t* accesses) {
  TraceRecorder recorder(2);
  core::RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.page_kind = PageKind::small4k;
  cfg.sim = core::SimConfig{sim::ProcessorSpec::opteron270(),
                            sim::CostModel{}, 0x5eedULL};
  cfg.trace_sink = &recorder;
  const npb::NpbResult r = npb::run_kernel(kernel, npb::Klass::S, cfg);
  EXPECT_TRUE(r.verified) << npb::kernel_name(kernel);
  TraceMeta meta;
  meta.kernel = npb::kernel_name(kernel);
  meta.klass = "S";
  meta.threads = 2;
  meta.page_kind = PageKind::small4k;
  Trace t = recorder.finish(std::move(meta));
  *accesses = t.meta.accesses;
  return std::move(t.streams);
}

void decode_to_end(const std::string& bytes) {
  ThreadDecoder dec(bytes);
  while (dec.next().kind != ThreadDecoder::ItemKind::end) {
  }
}

TEST(TraceCodecFuzz, IrregularKernelStreamsSurviveTruncationAndBitFlips) {
  Rng rng(0xF0221277'5EEDULL);
  for (npb::Kernel kernel :
       {npb::Kernel::GUPS, npb::Kernel::GT, npb::Kernel::PC}) {
    std::uint64_t accesses = 0;
    const std::vector<std::string> streams = harvest_streams(kernel, &accesses);
    ASSERT_EQ(streams.size(), 2u);
    std::uint64_t wire_bytes = 0;
    for (const std::string& s : streams) {
      ASSERT_GT(s.size(), 64u);
      wire_bytes += s.size();
      decode_to_end(s);  // the clean harvest decodes fully

      for (int i = 0; i < 64; ++i) {
        const std::size_t cut = rng.next_below(s.size());
        try {
          decode_to_end(s.substr(0, cut));
        } catch (const TraceError&) {
          // rejected cleanly — the acceptable outcome for a torn stream
        }
      }
      for (int i = 0; i < 256; ++i) {
        std::string bad = s;
        const std::size_t off = rng.next_below(bad.size());
        bad[off] = static_cast<char>(static_cast<std::uint8_t>(bad[off]) ^
                                     (1u << rng.next_below(8)));
        try {
          decode_to_end(bad);
        } catch (const TraceError&) {
        }
      }
    }
    // Near-incompressibility honesty check: regular kernels RLE to well
    // under a byte per access; these streams must not (loose bound so the
    // checksum-scan runs, which do compress, don't trip it).
    EXPECT_GT(wire_bytes, accesses / 2) << npb::kernel_name(kernel);
  }
}

}  // namespace
}  // namespace lpomp::trace
