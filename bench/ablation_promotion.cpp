// Ablation for related work (§5): the paper's startup preallocation vs the
// transparent (online) superpage promotion of Navarro/Romer et al.
//
// A CG-like workload (streamed array + random gathers into a vector) runs
// on the simulated Opteron under four policies:
//   static-4KB    — the paper's baseline;
//   static-2MB    — the paper's design: everything preallocated huge;
//   promote(T)    — 4 KB pages promoted after T touches per 2 MB chunk,
//                   paying a relocation copy + TLB shootdown per promotion;
//   promote(T), fragmented — the same, after physical memory has been
//                   fragmented so most promotions fail.
//
// Expected: online promotion approaches the static-2MB time once warm (low
// thresholds promote earlier but pay copies sooner; DTLB misses fall after
// the promotions land), but under fragmentation it silently degenerates to
// the 4 KB baseline — the paper's §3.3 argument that for a dedicated
// OpenMP node, preallocating everything at startup "is practical and likely
// to yield a better improvement in performance".
#include "mem/promotion.hpp"
#include "sim/machine.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

#include <iostream>
#include <optional>
#include <vector>

using namespace lpomp;

namespace {

struct RunResult {
  cycles_t cycles = 0;
  count_t walks = 0;
  count_t promotions = 0;
  count_t failed = 0;
};

/// The workload: `rounds` passes, each streaming a 24 MB array and making
/// random gathers into a 1.5 MB vector (CG's access mix).
RunResult run_policy(std::optional<PageKind> static_kind,
                     count_t promote_threshold, bool fragment,
                     count_t rounds) {
  mem::PhysMem pm(MiB(128));
  mem::AddressSpace space(pm);

  // Optional fragmentation before the app starts: take all 4 KB frames,
  // free all but one per 2 MB slot (no aligned huge block survives).
  std::vector<paddr_t> pins;
  if (fragment) {
    std::vector<paddr_t> all;
    while (auto f = pm.alloc_small_frame()) all.push_back(*f);
    for (paddr_t f : all) {
      if (f % kLargePageSize == 0) {
        pins.push_back(f);  // one pinned frame per 2 MB slot
      } else {
        pm.return_block(f, 0);
      }
    }
  }

  const PageKind map_kind = static_kind.value_or(PageKind::small4k);
  const mem::Region stream =
      space.map_region(MiB(24), map_kind, "stream");
  const mem::Region gather =
      space.map_region(MiB(1) + KiB(512), map_kind, "gather");

  std::optional<mem::SuperpagePromoter> stream_promoter, gather_promoter;
  if (!static_kind) {
    mem::SuperpagePromoter::Config cfg;
    cfg.touch_threshold = promote_threshold;
    stream_promoter.emplace(space, stream, cfg);
    gather_promoter.emplace(space, gather, cfg);
  }

  sim::Machine machine(sim::ProcessorSpec::opteron270(), sim::CostModel{},
                       space, 1);
  machine.begin_parallel();
  sim::ThreadSim& t = machine.thread(0);
  Rng rng(0x9807ABBAULL);

  auto touch = [&](const mem::Region& region,
                   std::optional<mem::SuperpagePromoter>& promoter,
                   vaddr_t offset) {
    const vaddr_t addr = region.base + offset;
    PageKind kind = static_kind.value_or(PageKind::small4k);
    if (promoter) {
      const cycles_t promo = promoter->on_touch(addr);
      if (promo != 0) {
        // Relocation: charge the copy + shootdown and flush the TLBs.
        t.add_compute(promo);
        t.tlbs().flush_all();
      }
      kind = promoter->kind_at(addr);
    }
    t.touch(addr, kind, Access::load);
  };

  for (count_t round = 0; round < rounds; ++round) {
    for (vaddr_t off = 0; off < stream.length; off += 64) {
      touch(stream, stream_promoter, off);
      if ((off & 0x3FF) == 0) {
        touch(gather, gather_promoter,
              rng.next_below(gather.length / 8) * 8);
      }
    }
  }
  machine.end_parallel();
  machine.end_run();

  RunResult r;
  r.cycles = machine.total_cycles();
  r.walks = machine.totals().dtlb_walk_total();
  if (stream_promoter) {
    r.promotions = stream_promoter->stats().promotions +
                   gather_promoter->stats().promotions;
    r.failed = stream_promoter->stats().failed_promotions +
               gather_promoter->stats().failed_promotions;
  }
  for (paddr_t p : pins) pm.return_block(p, 0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto rounds = static_cast<count_t>(opts.get_int("rounds", 3));

  std::cout << "Ablation (paper §5 related work): startup preallocation vs "
               "transparent superpage promotion\n(24MB stream + 1.5MB random "
               "gathers, Opteron geometry, " << rounds << " rounds)\n\n";

  TextTable table({"policy", "cycles", "vs 4KB", "DTLB walks", "promotions",
                   "failed"});
  const RunResult base =
      run_policy(PageKind::small4k, 0, false, rounds);
  auto row = [&](const std::string& name, const RunResult& r) {
    table.add_row({name, format_count(r.cycles),
                   format_percent(1.0 - static_cast<double>(r.cycles) /
                                            static_cast<double>(base.cycles)),
                   format_count(r.walks), std::to_string(r.promotions),
                   std::to_string(r.failed)});
  };
  row("static-4KB", base);
  row("static-2MB (paper)", run_policy(PageKind::large2m, 0, false, rounds));
  for (count_t threshold : {count_t{1024}, count_t{16384}, count_t{131072}}) {
    row("promote(T=" + std::to_string(threshold) + ")",
        run_policy(std::nullopt, threshold, false, rounds));
  }
  row("promote(T=1024), fragmented",
      run_policy(std::nullopt, 1024, true, rounds));
  table.print();

  std::cout << "\nOnline promotion converges toward the preallocated-2MB "
               "time but pays per-chunk\nrelocation copies, and under "
               "fragmentation it cannot promote at all — the\npaper's case "
               "for reserving the whole shared image at startup (§3.3).\n";
  return 0;
}
