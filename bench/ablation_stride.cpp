// Ablation for §3.1/§3.2 "Application Locality and Large Pages": data-TLB
// behaviour as a function of access stride, 4 KB vs 2 MB pages, on the
// Opteron TLB geometry.
//
// A single simulated thread strides through a 64 MB region. Expected shape:
//  * stride ≤ 4 KB: both page sizes stay TLB-cheap (many accesses/page);
//  * stride between 4 KB and 2 MB: every access touches a new 4 KB page
//    (misses grow), while 2 MB pages still amortise — big win for 2 MB;
//  * stride ≥ 2 MB: every access touches a new *huge* page too, and the
//    tiny 2 MB TLB banks (8-entry L1, no L2 backing on the Opteron) thrash
//    while the 512-entry 4 KB L2 DTLB can still cover the working set —
//    the crossover where small pages win back, exactly the caveat in §3.2.
#include "sim/machine.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

#include <iostream>

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto region_bytes =
      static_cast<std::size_t>(opts.get_int("region-mb", 64)) * MiB(1);
  const auto accesses = static_cast<count_t>(opts.get_int("accesses", 2000000));

  std::cout << "Ablation (paper §3.1-3.2): DTLB misses and cycles/access vs "
               "stride,\nOpteron geometry, "
            << format_bytes(region_bytes) << " region, " << accesses
            << " accesses per point\n\n";

  TextTable table({"stride", "4KB walks", "4KB cyc/access", "2MB walks",
                   "2MB cyc/access", "2MB speedup"});

  for (std::size_t stride :
       {std::size_t{64}, KiB(1), KiB(4), KiB(16), KiB(64), KiB(256), MiB(1),
        MiB(2), MiB(4), MiB(8)}) {
    double cyc[2];
    count_t walks[2];
    for (PageKind kind : {PageKind::small4k, PageKind::large2m}) {
      mem::PhysMem pm(2 * region_bytes);
      mem::AddressSpace space(pm);
      const mem::Region region = space.map_region(region_bytes, kind, "data");

      sim::Machine machine(sim::ProcessorSpec::opteron270(), sim::CostModel{},
                           space, 1);
      machine.begin_parallel();
      sim::ThreadSim& t = machine.thread(0);
      vaddr_t offset = 0;
      for (count_t i = 0; i < accesses; ++i) {
        t.touch(region.base + offset, kind, Access::load);
        offset += stride;
        if (offset >= region_bytes) offset -= region_bytes;
      }
      machine.end_parallel();
      machine.end_run();

      const auto idx = static_cast<std::size_t>(kind);
      cyc[idx] = static_cast<double>(machine.total_cycles()) /
                 static_cast<double>(accesses);
      walks[idx] = machine.totals().dtlb_walk_total();
    }
    table.add_row({format_bytes(stride), format_count(walks[0]),
                   format_ratio(cyc[0]), format_count(walks[1]),
                   format_ratio(cyc[1]), format_ratio(cyc[0] / cyc[1])});
  }
  table.print();
  std::cout << "\nNote the crossover: beyond the 2MB stride the large-page "
               "TLB banks thrash\n(speedup < 1) while the 512-entry 4KB L2 "
               "DTLB still covers the working set —\nwhy applications with "
               ">2MB strides (FT) 'might in fact benefit more' from small\n"
               "pages on the Opteron (paper §3.2).\n";
  return 0;
}
