// The paper's §6 future work, carried out: "we would also like to evaluate
// the benefit of large pages on the performance of other programming
// paradigms such as MPI."
//
// Intra-node MPI moves every byte through a shared-memory channel with two
// copies (sender → channel ring, channel ring → receiver). This bench
// ping-pongs messages of growing size between two ranks of the simulated
// Opteron with the channel backed by 4 KB vs 2 MB pages, and finishes with
// a 4-rank allreduce. Expected: once a message outgrows the DTLB's 4 KB
// reach, the copy loops pay a page walk + prefetcher re-arm every 4 KB and
// huge pages win — the same mechanism as the OpenMP results, now on the
// message-passing substrate.
#include "mpi/mpi.hpp"
#include "prof/profile.hpp"
#include "sim/processor_spec.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

#include <iostream>
#include <vector>

using namespace lpomp;

namespace {

struct RunResult {
  double seconds = 0.0;
  count_t walks = 0;
};

RunResult pingpong(PageKind kind, std::size_t msg_doubles, int rounds) {
  core::RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.page_kind = kind;
  cfg.shared_pool_bytes = msg_doubles * sizeof(double) * 4 + MiB(8);
  cfg.sim = core::SimConfig{sim::ProcessorSpec::opteron270(),
                            sim::CostModel{}, 0x3141ULL};
  core::Runtime rt(cfg);
  mpi::Communicator comm(rt, /*chunk_doubles=*/8192, /*slots=*/4);

  // Source/destination application buffers also live in the pool, so their
  // traffic sees the same page size (as real MPI apps' heaps would).
  core::SharedArray<double> a = rt.alloc_array<double>(msg_doubles, "a");
  core::SharedArray<double> b = rt.alloc_array<double>(msg_doubles, "b");
  for (std::size_t i = 0; i < msg_doubles; ++i) a[i] = static_cast<double>(i);

  rt.parallel([&](core::ThreadCtx& ctx) {
    for (int r = 0; r < rounds; ++r) {
      if (ctx.tid() == 0) {
        comm.send(ctx, 1, r, a, 0, msg_doubles);
        comm.recv(ctx, 1, r, a, 0, msg_doubles);
      } else {
        comm.recv(ctx, 0, r, b, 0, msg_doubles);
        comm.send(ctx, 0, r, b, 0, msg_doubles);
      }
    }
  });
  RunResult result;
  result.seconds = rt.finish_seconds();
  result.walks = rt.machine()->totals().dtlb_walk_total();
  return result;
}

RunResult allreduce(PageKind kind, std::size_t n, int rounds) {
  core::RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.page_kind = kind;
  cfg.shared_pool_bytes = n * sizeof(double) * 8 + MiB(8);
  cfg.sim = core::SimConfig{sim::ProcessorSpec::opteron270(),
                            sim::CostModel{}, 0x3141ULL};
  core::Runtime rt(cfg);
  mpi::Communicator comm(rt, 8192, 4);
  core::SharedArray<double> data = rt.alloc_array<double>(n * 4, "vectors");

  rt.parallel([&](core::ThreadCtx& ctx) {
    double* mine = data.raw() + static_cast<std::size_t>(ctx.tid()) * n;
    for (std::size_t i = 0; i < n; ++i) mine[i] = 1.0;
    for (int r = 0; r < rounds; ++r) {
      comm.allreduce_sum(ctx, mine, n);
    }
  });
  RunResult result;
  result.seconds = rt.finish_seconds();
  result.walks = rt.machine()->totals().dtlb_walk_total();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int rounds = static_cast<int>(opts.get_int("rounds", 4));

  std::cout << "Future work (paper §6): large pages for intra-node MPI\n"
               "(two-copy shared-memory channel, simulated Opteron)\n\n";

  std::cout << "Ping-pong, 2 ranks, " << rounds << " rounds:\n";
  TextTable table({"message", "4KB time", "4KB walks", "2MB time",
                   "2MB walks", "2MB improv"});
  for (std::size_t bytes : {KiB(32), KiB(256), MiB(1), MiB(4), MiB(16)}) {
    const std::size_t n = bytes / sizeof(double);
    const RunResult r4 = pingpong(PageKind::small4k, n, rounds);
    const RunResult r2 = pingpong(PageKind::large2m, n, rounds);
    table.add_row({format_bytes(bytes), format_seconds(r4.seconds),
                   format_count(r4.walks), format_seconds(r2.seconds),
                   format_count(r2.walks),
                   format_percent((r4.seconds - r2.seconds) / r4.seconds)});
  }
  table.print();

  std::cout << "\nAllreduce(sum), 4 ranks, " << rounds << " rounds:\n";
  TextTable table2({"vector", "4KB time", "2MB time", "2MB improv"});
  for (std::size_t bytes : {KiB(256), MiB(2), MiB(8)}) {
    const std::size_t n = bytes / sizeof(double);
    const RunResult r4 = allreduce(PageKind::small4k, n, rounds);
    const RunResult r2 = allreduce(PageKind::large2m, n, rounds);
    table2.add_row({format_bytes(bytes), format_seconds(r4.seconds),
                    format_seconds(r2.seconds),
                    format_percent((r4.seconds - r2.seconds) / r4.seconds)});
  }
  table2.print();

  std::cout << "\nLarge messages stream through the channel at page "
               "granularity: with 4KB pages\nevery page boundary costs a "
               "walk and a prefetcher re-arm on both copies; 2MB\npages "
               "amortise that 512x — the OpenMP result carries over to "
               "MPI.\n";
  return 0;
}
