// sweep_client — thin client for the sweep_service daemon.
//
//   sweep_client [--shm=/lpomp-sweep] [--kernels=CG,MG] [--klass=S]
//                [--platforms=opteron,xeon,modern] [--threads=1,2,4,8]
//                [--pages=4KB,2MB] [--code-pages=4KB]
//                [--paging=native,hugetlb2m,huge1g,thp] [--seed=N]
//                [--per-task-seeds]
//                [--strategy=live|recorded|multilane|analytic|auto]
//                [--repeat=1] [--timeout-ms=120000] [--json=FILE] [--quiet]
//   sweep_client --stats [--shm=/lpomp-sweep]
//
// Encodes the sweep as one request line, submits it over the daemon's
// shared-memory ring, and prints the response JSON to stdout (or --json=).
// A grid the daemon has already computed comes back from its persistent
// store in microseconds — --repeat=N resubmits the identical request and
// reports min/mean round-trip latency on stderr, which is how the CI smoke
// job asserts the warm path stays sub-millisecond.
//
// --stats skips the sweep entirely and prints the daemon's telemetry
// document (ring counters, queue-depth peak, persistent-store stats) —
// the read-only probe that used to require SIGTERMing the daemon to see.
//
// Exit status: 0 on an "ok" response, 1 on a daemon-side error response,
// 2 on local failures (no daemon, ring saturated, malformed flags).
#include <chrono>
#include <iostream>

#include "bench/bench_common.hpp"
#include "serve/client.hpp"

using namespace lpomp;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(',', start);
    if (pos == std::string::npos) pos = text.size();
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  if (opts.get_flag("stats")) {
    try {
      serve::SweepClient client(opts.get("shm", "/lpomp-sweep"));
      std::cout << client.stats(std::chrono::milliseconds(
                       opts.get_int("timeout-ms", 10000)))
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "sweep_client: " << e.what() << "\n";
      return 2;
    }
    return 0;
  }

  serve::SweepRequest request;
  request.kernels = bench::kernels_from(opts);
  request.klass = bench::klass_by_name(opts.get("klass", "S"));
  request.platforms = split_csv(opts.get("platforms", "opteron,xeon"));
  request.threads.clear();
  for (const std::string& t : split_csv(opts.get("threads", "1,2,4,8"))) {
    request.threads.push_back(static_cast<unsigned>(std::stoul(t)));
  }
  request.page_kinds.clear();
  for (const std::string& p : split_csv(opts.get("pages", "4KB,2MB"))) {
    if (p == "4KB") {
      request.page_kinds.push_back(PageKind::small4k);
    } else if (p == "2MB") {
      request.page_kinds.push_back(PageKind::large2m);
    } else {
      std::cerr << "unknown page kind '" << p << "' (valid: 4KB, 2MB)\n";
      return 2;
    }
  }
  request.code_page_kind =
      opts.get("code-pages", "4KB") == "2MB" ? PageKind::large2m
                                             : PageKind::small4k;
  request.paging = split_csv(opts.get("paging", "native"));
  request.base_seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 0x5eed));
  request.per_task_seeds = opts.get_flag("per-task-seeds");
  request.strategy = bench::strategy_from(opts);

  const long repeat = std::max<long>(1, opts.get_int("repeat", 1));
  const std::chrono::milliseconds deadline(
      opts.get_int("timeout-ms", 120000));

  try {
    serve::SweepClient client(opts.get("shm", "/lpomp-sweep"));
    std::string response;
    double min_us = 0.0;
    double total_us = 0.0;
    for (long i = 0; i < repeat; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      response = client.submit(request, deadline);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      total_us += us;
      if (i == 0 || us < min_us) min_us = us;
    }

    const std::string path = opts.get("json", "");
    if (!path.empty()) {
      std::ofstream os(path);
      if (!os) {
        std::cerr << "cannot write --json=" << path << "\n";
        return 2;
      }
      os << response << "\n";
    } else if (!opts.get_flag("quiet")) {
      std::cout << response << "\n";
    }
    if (repeat > 1) {
      std::cerr << "sweep_client: " << repeat << " round trips, min "
                << format_ratio(min_us) << "us, mean "
                << format_ratio(total_us / static_cast<double>(repeat)) << "us\n";
    }
  } catch (const serve::ClientError& e) {
    std::cerr << "sweep_client: " << e.what() << "\n";
    // A daemon-side error response is a successful round trip that carried
    // bad news; everything else is a local/transport failure.
    return std::string(e.what()).rfind("daemon error:", 0) == 0 ? 1 : 2;
  } catch (const std::exception& e) {
    std::cerr << "sweep_client: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
