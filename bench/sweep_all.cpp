// One parallel invocation that reproduces every headline number of the
// paper from a single engine sweep over the Figure 4 config grid
// ({BT,CG,FT,SP,MG,GUPS,GT,PC} × {Opteron, Xeon+HT} × {1,2,4,8}T ×
// {4KB,2MB}):
//
//   * Figure 4 — run-time improvement from 2 MB pages per thread count;
//   * Figure 5 — DTLB walk reduction at 4 threads on the Opteron (those
//     grid points are a subset of the Figure 4 grid, so they cost nothing
//     extra — the content-keyed cache serves them);
//   * Figure 3 — aggregate ITLB miss rate at 4 threads (negligible).
//
// The sweep is trace-backed by default: each unique address stream
// (kernel × class × threads × page kind) is served as one fused group —
// the first grid point runs live while recording, the stream is compiled
// into a TracePlan once, and every other platform/seed point replays the
// plan with the analytic fast-forward tier, skipping the kernel numerics
// without changing a single counter. --strategy= picks the execution
// strategy explicitly: analytic (the default via auto), multilane
// (live-leader lane fan-out), recorded (record-then-replay trace store
// path), live (no traces at all); every choice produces bit-identical
// grids. The historical --no-trace/--no-multilane/--no-analytic flags
// remain as aliases that print their --strategy= equivalent.
// --replay-check runs every recordable task live, interpreted-replayed and
// analytic-replayed, and verifies three-way bit-identity across the grid.
// --store-dir= layers the disk-persistent result store under the cache
// (the same store the sweep daemon serves from).
//
// --json-out=BENCH_sweep.json writes the machine-readable perf summary CI
// trends: cold/warm wall-clock, warm cache-hit rate, lane occupancy, and a
// per-run wall-time/provenance row for every grid point.
//
// After the cold sweep the same grid is rerun warm to exercise the result
// cache: the rerun must be served (≥90 %, in practice 100 %) from cache and
// must be counter-for-counter identical to the cold pass. The JSON output
// (--json=sweep.json) contains the warm-rerun verdict and every per-run
// record; by default only deterministic fields are emitted, so
//   sweep_all --workers=1 --json=a.json && sweep_all --workers=8 --json=b.json
// produces byte-identical files — the engine's determinism guarantee.
#include <map>
#include <utility>

#include "bench/bench_common.hpp"
#include "exec/json.hpp"
#include "serve/client.hpp"
#include "trace/replay.hpp"

using namespace lpomp;

namespace {

/// --replay-check: for every task, a forced live run, a trace-store-fed
/// interpreted run (record on first sight of the stream, replay
/// afterwards) and an analytic compiled-plan replay must all agree on
/// every deterministic counter. Returns the number of mismatches.
std::size_t replay_check(const std::vector<exec::RunTask>& tasks,
                         std::size_t trace_store_bytes) {
  trace::TraceStore store(trace_store_bytes);
  std::size_t mismatches = 0;
  std::size_t replays = 0;
  std::size_t analytic_replays = 0;
  for (const exec::RunTask& task : tasks) {
    exec::RunTask traced = task;
    traced.trace_backed = true;
    const exec::RunRecord live = exec::ExperimentEngine::execute_task(task);
    const exec::RunRecord via_store =
        exec::ExperimentEngine::execute_task(traced, &store, false);
    // The stream is in the store by now (recorded above if absent), so this
    // exercises the analytic plan path for every task.
    const exec::RunRecord via_analytic =
        exec::ExperimentEngine::execute_task(traced, &store, true);
    if (via_store.trace_source == "replay") ++replays;
    if (via_analytic.trace_source == "analytic") ++analytic_replays;
    if (!live.same_result(via_store)) {
      ++mismatches;
      std::cerr << "REPLAY MISMATCH: " << task.label() << " (live vs "
                << via_store.trace_source << ")\n";
    }
    if (!live.same_result(via_analytic)) {
      ++mismatches;
      std::cerr << "REPLAY MISMATCH: " << task.label() << " (live vs "
                << via_analytic.trace_source << ")\n";
    }
  }
  const trace::TraceStore::Stats s = store.stats();
  std::cout << "replay check: " << tasks.size() << " tasks, " << replays
            << " replayed + " << analytic_replays << " analytic from "
            << s.traces << " recorded streams (" << format_bytes(s.bytes)
            << ", " << s.plans << " plans), " << mismatches
            << " mismatches\n";
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));

  exec::SweepSpec spec = exec::SweepSpec::figure4(klass);
  spec.kernels = bench::kernels_from(opts);
  const exec::Strategy strategy =
      exec::resolve_strategy(bench::strategy_from(opts));
  spec.trace_backed = strategy != exec::Strategy::Live;

  // --paging=native,hugetlb2m,huge1g,thp adds the paging-policy axis. Every
  // policy reinterprets the same recorded address stream, so the layout axis
  // collapses to 4 KB: one stream per kernel × class × threads feeds every
  // policy column, and the fused groups fan out across policies exactly as
  // they do across platforms.
  const bool paging_axis = !opts.get("paging", "").empty();
  if (paging_axis) {
    spec.page_kinds = {PageKind::small4k};
    spec.paging_policies = bench::paging_from(opts);
  }

  if (opts.get_flag("replay-check")) {
    const std::size_t bytes =
        MiB(static_cast<std::size_t>(opts.get_int("trace-store-mb", 2048)));
    return replay_check(spec.expand(), bytes) == 0 ? 0 : 1;
  }

  exec::ExperimentEngine engine = bench::make_engine(opts);
  std::cout << "sweep_all: " << spec.expand().size()
            << " runs over the Figure 4 grid (class " << npb::klass_name(klass)
            << "), " << engine.workers() << " workers, strategy "
            << exec::strategy_name(strategy) << "\n";

  const exec::SweepResult cold = engine.run(spec);
  bench::require_all_verified(cold);
  std::cout << "cold sweep: " << cold.completed() << "/"
            << cold.records.size() << " runs in "
            << format_seconds(cold.wall_ms / 1e3) << "s wall ("
            << format_seconds(cold.total_simulated_seconds())
            << "s simulated)\n";
  const bench::TraceProvenance prov = bench::trace_provenance(cold);
  if (spec.trace_backed) {
    std::cout << "streams: " << prov.lane + prov.analytic << " lanes in "
              << cold.fused_groups << " fused groups (" << prov.analytic
              << " analytic), " << prov.record << " recorded, "
              << prov.replay << " replayed, " << prov.live << " live";
    if (prov.fallback > 0) {
      std::cout << ", " << prov.fallback << " trace fallbacks";
    }
    std::cout << "\n";
    const trace::TraceStore::Stats ts = engine.trace_store().stats();
    if (ts.insertions > 0 || ts.traces > 0) {
      std::cout << "trace store: " << ts.released << " streams released, "
                << ts.traces << " resident (" << format_bytes(ts.bytes)
                << " of " << format_bytes(ts.budget) << ")";
      if (ts.rejected > 0) {
        // An over-budget stream is never stored, so every later task sharing
        // it silently re-records; raise --trace-store-mb.
        std::cout << "; " << ts.rejected << " over-budget inserts dropped";
      }
      std::cout << "\n";
    }
  }

  // Warm rerun over the identical grid: every task must be served from the
  // result cache with counters identical to the cold pass.
  const exec::SweepResult warm = engine.run(spec);
  bool identical = warm.records.size() == cold.records.size();
  for (std::size_t i = 0; identical && i < warm.records.size(); ++i) {
    identical = warm.records[i].same_result(cold.records[i]);
  }
  const double warm_hit_rate =
      warm.records.empty()
          ? 0.0
          : static_cast<double>(warm.cache_hits()) /
                static_cast<double>(warm.records.size());
  std::cout << "warm rerun: " << warm.cache_hits() << "/"
            << warm.records.size() << " served from cache ("
            << format_percent(warm_hit_rate) << ") in "
            << format_seconds(warm.wall_ms / 1e3) << "s wall; counters "
            << (identical ? "identical" : "DIFFER") << "\n";

  // --- headline table: the paper's §4.4 results in one place -------------
  const std::string opteron = sim::ProcessorSpec::opteron270().name;
  const std::string xeon = sim::ProcessorSpec::xeon_ht().name;
  if (paging_axis) {
    // Policy sweep: per-kernel run time and total walk count at 4 threads on
    // the Opteron, one column pair per policy, improvement vs the first
    // policy in the list (conventionally native/base4k).
    std::cout << "\nPaging-policy comparison (4 threads, Opteron):\n";
    std::vector<std::string> header = {"app"};
    for (const paging::PolicySpec& p : spec.paging_policies) {
      header.push_back(std::string(p.name()) + " improv");
      header.push_back(std::string(p.name()) + " walks");
    }
    TextTable table(header);
    for (npb::Kernel k : spec.kernels) {
      const std::string kernel = npb::kernel_name(k);
      const exec::RunRecord* base = cold.find(
          kernel, opteron, 4, "4KB", spec.paging_policies.front().name());
      std::vector<std::string> row = {kernel};
      for (const paging::PolicySpec& p : spec.paging_policies) {
        const exec::RunRecord* r =
            cold.find(kernel, opteron, 4, "4KB", p.name());
        if (r == nullptr || base == nullptr) {
          row.push_back("-");
          row.push_back("-");
          continue;
        }
        row.push_back(bench::improvement(base->simulated_seconds,
                                         r->simulated_seconds));
        row.push_back(std::to_string(r->dtlb_walks_4k + r->dtlb_walks_2m +
                                     r->dtlb_walks_1g));
      }
      table.add_row(row);
    }
    table.print();
  } else {
    std::cout << "\nHeadline reproduction (4 threads, Opteron; Fig. 3/4/5):\n";
    TextTable table({"app", "2MB improv @4T", "DTLB walk reduction",
                     "ITLB misses/sec", "xeon 2MB improv @8T"});
    for (npb::Kernel k : spec.kernels) {
      const std::string kernel = npb::kernel_name(k);
      const exec::RunRecord* o4k = cold.find(kernel, opteron, 4, "4KB");
      const exec::RunRecord* o2m = cold.find(kernel, opteron, 4, "2MB");
      const exec::RunRecord* x4k = cold.find(kernel, xeon, 8, "4KB");
      const exec::RunRecord* x2m = cold.find(kernel, xeon, 8, "2MB");
      const count_t w4k = o4k->dtlb_walks_4k + o4k->dtlb_walks_2m;
      const count_t w2m = o2m->dtlb_walks_4k + o2m->dtlb_walks_2m;
      table.add_row(
          {kernel,
           bench::improvement(o4k->simulated_seconds, o2m->simulated_seconds),
           w2m ? format_ratio(static_cast<double>(w4k) /
                              static_cast<double>(w2m)) +
                     "x"
               : "inf",
           format_ratio(static_cast<double>(o4k->itlb_misses) /
                        (o4k->simulated_seconds > 0 ? o4k->simulated_seconds
                                                    : 1.0)),
           bench::improvement(x4k->simulated_seconds, x2m->simulated_seconds)});
    }
    table.print();
    std::cout << "\nPaper targets: CG ~25%, SP ~20%, MG ~17% @4T Opteron; "
                 "BT/FT flat;\nDTLB reduction >=10x for CG/SP/MG vs 2-3x for "
                 "BT/FT; ITLB negligible;\nSP ~13% @8T Xeon.\n";
  }

  // --- JSON document ------------------------------------------------------
  const std::string path = opts.get("json", "");
  const bool host = opts.get_flag("json-host");
  exec::JsonWriter w;
  w.begin_object();
  w.field("schema", "lpomp-sweep-all-v1");
  w.key("warm_rerun");
  w.begin_object();
  w.field("tasks", static_cast<std::uint64_t>(warm.records.size()));
  w.field("cache_hits", static_cast<std::uint64_t>(warm.cache_hits()));
  w.field("cache_hit_rate", warm_hit_rate);
  w.field("identical_to_cold", identical);
  if (host) w.field("wall_ms", warm.wall_ms);
  w.end_object();
  if (host) {
    // Trace provenance is scheduling-dependent (which task records vs
    // replays or rides as a lane), so it lives with the host-only fields.
    w.key("trace");
    w.begin_object();
    w.field("enabled", spec.trace_backed);
    w.field("recorded", static_cast<std::uint64_t>(prov.record));
    w.field("replayed", static_cast<std::uint64_t>(prov.replay));
    w.field("analytic", static_cast<std::uint64_t>(prov.analytic));
    w.field("lanes", static_cast<std::uint64_t>(prov.lane));
    w.field("fallbacks", static_cast<std::uint64_t>(prov.fallback));
    w.field("live", static_cast<std::uint64_t>(prov.live));
    w.end_object();
  }
  w.key("sweep");
  w.raw(cold.to_json(host));
  w.end_object();
  if (!path.empty()) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write --json=" << path << "\n";
      return 2;
    }
    os << w.str() << "\n";
    std::cout << "\nwrote " << path << "\n";
  }

  // --- BENCH summary (--json-out) -----------------------------------------
  // Compact perf-trend document: wall-clock, cache-hit rate and lane
  // occupancy, plus one wall-time/provenance row per grid point. CI uploads
  // it and warns (non-blocking) when wall-clock regresses against the
  // committed reference.
  const std::string bench_path = opts.get("json-out", "");
  if (!bench_path.empty()) {
    // Lane occupancy over *fusable* stream groups (points ≥ 2). A group of
    // P points always needs one source run (leader or recording), so its
    // lane capacity is P−1; occupancy = offloaded/(P−1). Singleton groups
    // (e.g. 8T streams only one platform can host) have no capacity at all
    // — the old definition (fused_lanes/records) let them drag the overall
    // number to 0.43 when every fusable group was actually full. They are
    // reported separately (singleton_points) and excluded from the overall.
    std::vector<std::string> group_order;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> groups;
    for (const exec::RunRecord& r : cold.records) {
      const std::string stream = r.kernel + "." + r.klass + "/" +
                                 std::to_string(r.threads) + "T/" +
                                 r.page_kind;
      auto [it, fresh] = groups.try_emplace(stream, 0, 0);
      if (fresh) group_order.push_back(stream);
      ++it->second.first;
      if (r.trace_source == "analytic" || r.trace_source == "lane" ||
          r.trace_source == "replay") {
        ++it->second.second;
      }
    }
    std::uint64_t fusable_points = 0;
    std::uint64_t singleton_points = 0;
    std::uint64_t fusable_capacity = 0;  // Σ (points − 1) over fusable groups
    std::uint64_t fusable_offloaded = 0;
    for (const std::string& stream : group_order) {
      const auto& [points, offloaded] = groups[stream];
      if (points >= 2) {
        fusable_points += points;
        fusable_capacity += points - 1;
        fusable_offloaded += offloaded;
      } else {
        singleton_points += points;
      }
    }
    const double occupancy =
        fusable_capacity == 0 ? 0.0
                              : static_cast<double>(fusable_offloaded) /
                                    static_cast<double>(fusable_capacity);
    // The admission-queue peak is daemon-side state: sweep_all itself runs
    // unqueued, so without --shm= the field reports 0 for schema parity.
    // With --shm=NAME it probes the live daemon's ring via the stats
    // request and reports the real high-water mark.
    std::uint64_t queue_depth_peak = 0;
    const std::string shm = opts.get("shm", "");
    if (!shm.empty()) {
      try {
        serve::SweepClient stats_client(shm);
        const exec::JsonValue doc = exec::json_parse(stats_client.stats());
        queue_depth_peak =
            doc.at("stats").at("queue_depth_peak").as_uint64();
      } catch (const std::exception& e) {
        std::cerr << "warning: stats probe of --shm=" << shm
                  << " failed: " << e.what() << "\n";
      }
    }
    exec::JsonWriter b;
    b.begin_object();
    b.field("schema", "lpomp-bench-sweep-v5");
    b.field("klass", std::string(npb::klass_name(klass)));
    b.field("workers", static_cast<std::uint64_t>(cold.workers));
    b.field("topology", cold.topology);
    b.field("domains", static_cast<std::uint64_t>(cold.domains));
    b.field("strategy", exec::strategy_name(strategy));
    b.key("paging");
    b.begin_array();
    for (const paging::PolicySpec& p : spec.paging_policies) {
      b.value(p.name());
    }
    b.end_array();
    b.field("runs", static_cast<std::uint64_t>(cold.records.size()));
    b.field("cold_wall_ms", cold.wall_ms);
    b.field("warm_wall_ms", warm.wall_ms);
    b.field("warm_cache_hit_rate", warm_hit_rate);
    // Persistent-store telemetry (all zero when --store-dir= is not given).
    b.key("store");
    b.begin_object();
    b.field("enabled", engine.disk_store() != nullptr);
    b.field("hits", cold.store.hits + warm.store.hits);
    b.field("misses", cold.store.misses + warm.store.misses);
    b.field("insertions", cold.store.insertions + warm.store.insertions);
    b.field("quarantined", cold.store.quarantined + warm.store.quarantined);
    b.field("bytes_read", cold.store.bytes_read + warm.store.bytes_read);
    b.field("bytes_written",
            cold.store.bytes_written + warm.store.bytes_written);
    b.end_object();
    b.field("admission_queue_depth_peak", queue_depth_peak);
    b.key("lane_stats");
    b.begin_object();
    b.field("fused_groups", static_cast<std::uint64_t>(cold.fused_groups));
    b.field("fused_lanes", static_cast<std::uint64_t>(cold.fused_lanes));
    b.field("replay_fallbacks",
            static_cast<std::uint64_t>(cold.replay_fallbacks));
    b.field("fusable_points", fusable_points);
    b.field("singleton_points", singleton_points);
    b.field("lane_occupancy_overall", occupancy);
    // Substrate-pool provenance over the cold + warm sweeps: reuse > 0 is
    // the warm-fused-replay fast path actually firing.
    b.field("substrate_builds", cold.substrate_builds + warm.substrate_builds);
    b.field("substrate_reuse", cold.substrate_reuse + warm.substrate_reuse);
    b.field("substrate_scrub_discards",
            cold.substrate_scrub_discards + warm.substrate_scrub_discards);
    b.field("local_steals", cold.local_steals + warm.local_steals);
    b.field("remote_steals", cold.remote_steals + warm.remote_steals);
    // Per-stream-group occupancy. A group is one address stream: kernel ×
    // class × threads × page kind; "offloaded" counts its points served
    // from the stream as analytic/lane/replay followers; "fusable" groups
    // (points ≥ 2) have capacity points−1 (the source run is structural).
    b.key("stream_groups");
    b.begin_array();
    for (const std::string& stream : group_order) {
      const auto& [points, offloaded] = groups[stream];
      b.begin_object();
      b.field("stream", stream);
      b.field("points", points);
      b.field("offloaded", offloaded);
      b.field("fusable", points >= 2);
      b.field("occupancy", points < 2 ? 0.0
                                      : static_cast<double>(offloaded) /
                                            static_cast<double>(points - 1));
      b.end_object();
    }
    b.end_array();
    // Adaptive-chunking decision trace of the cold sweep: per sharded
    // stream group, the mode it executed under and the governor state
    // after its imbalance observation.
    b.key("sharding");
    b.begin_array();
    for (const exec::SweepResult::GroupSharding& g : cold.sharding) {
      b.begin_object();
      b.field("stream", g.stream);
      b.field("mode", g.mode);
      b.field("shards", static_cast<std::uint64_t>(g.shards));
      b.field("imbalance", g.imbalance);
      b.field("ewma", g.ewma);
      b.field("promotions", g.promotions);
      b.field("demotions", g.demotions);
      b.end_object();
    }
    b.end_array();
    b.end_object();
    b.key("runs_detail");
    b.begin_array();
    for (const exec::RunRecord& r : cold.records) {
      b.begin_object();
      b.field("label",
              r.kernel + "." + r.klass + "/" + r.platform + "/" +
                  std::to_string(r.threads) + "T/" + r.page_kind +
                  (r.paging == "native" ? "" : "/" + r.paging));
      b.field("paging", r.paging);
      b.field("wall_ms", r.wall_ms);
      b.field("source", r.trace_source);
      b.field("cache_hit", r.cache_hit);
      b.field("store_hit", r.store_hit);
      b.end_object();
    }
    b.end_array();
    b.end_object();
    std::ofstream os(bench_path);
    if (!os) {
      std::cerr << "cannot write --json-out=" << bench_path << "\n";
      return 2;
    }
    os << b.str() << "\n";
    std::cout << "wrote " << bench_path << "\n";
  }

  if (!identical) {
    std::cerr << "FAIL: warm rerun diverged from cold sweep\n";
    return 1;
  }
  if (warm_hit_rate < 0.9) {
    std::cerr << "FAIL: warm-cache hit rate " << format_percent(warm_hit_rate)
              << " below 90%\n";
    return 1;
  }
  return 0;
}
