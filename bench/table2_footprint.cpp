// Reproduces Table 2: "Application Memory Footprint" — the instruction
// (binary) and data footprints of the five NAS benchmarks at class B,
// computed from the same static-allocation inventories the kernels use.
//
// Paper comparison note (see EXPERIMENTS.md): the paper's data column is
// consistently ≈2× the NPB static allocation; the Omni/SCASH shared image
// is a memory-mapped file shared by all processes, so resident accounting
// sees it once as page cache and once as mapped data. We print the
// allocation image itself.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass =
      bench::klass_by_name(opts.get("klass", "B"));

  std::cout << "Table 2: Application Memory Footprint (class "
            << npb::klass_name(klass) << ")\n\n";

  TextTable table({"", "Instruction", "Data", "Data (paper, class B)"});
  const char* paper[] = {"371MB", "725MB", "2.4GB", "387MB", "884MB"};
  int i = 0;
  for (npb::Kernel k : npb::all_kernels()) {
    table.add_row({std::string(npb::kernel_name(k)) + " (" +
                       npb::klass_name(klass) + ")",
                   format_bytes(npb::binary_bytes(k)),
                   format_bytes(npb::data_footprint_bytes(k, klass)),
                   paper[i++]});
  }
  table.print();

  if (opts.get_flag("detail")) {
    for (npb::Kernel k : npb::all_kernels()) {
      std::cout << "\n" << npb::kernel_name(k) << " allocation inventory:\n";
      for (const npb::ArrayInfo& a : npb::array_inventory(k, klass)) {
        std::cout << "  " << a.name << ": " << format_bytes(a.bytes) << "\n";
      }
    }
  }
  return 0;
}
