// Ablation for §4.3 "Impact of large pages on Instruction Misses": the
// paper observes that every NPB binary is smaller than 2 MB, so placing the
// text in one huge page would eliminate ITLB misses entirely — but the
// measured ITLB miss rate is already so low (Figure 3) that it is not worth
// pursuing. This bench runs both placements and confirms the decision: the
// end-to-end difference is lost in the noise floor.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();

  std::cout << "Ablation (paper §4.3): application binary in 4KB pages vs "
               "one 2MB page\n(data in 4KB pages throughout; 4 threads, "
            << opteron.name << ", class " << npb::klass_name(klass) << ")\n\n";

  TextTable table({"Application", "ITLB misses (4KB code)",
                   "ITLB misses (2MB code)", "time (4KB code)",
                   "time (2MB code)", "speedup"});
  for (npb::Kernel k : bench::kernels_from(opts)) {
    core::RuntimeConfig small_code =
        bench::make_config(opteron, 4, PageKind::small4k);
    core::RuntimeConfig large_code = small_code;
    large_code.code_page_kind = PageKind::large2m;

    const npb::NpbResult rs = npb::run_kernel(k, klass, small_code);
    const npb::NpbResult rl = npb::run_kernel(k, klass, large_code);
    table.add_row(
        {npb::kernel_name(k),
         std::to_string(rs.profile.count(prof::ProfileReport::kItlbMiss)),
         std::to_string(rl.profile.count(prof::ProfileReport::kItlbMiss)),
         format_seconds(rs.simulated_seconds),
         format_seconds(rl.simulated_seconds),
         format_percent((rs.simulated_seconds - rl.simulated_seconds) /
                        rs.simulated_seconds)});
  }
  table.print();
  std::cout << "\nA 2MB code page removes the (already tiny) ITLB misses but "
               "moves run time by\nwell under a percent — the paper's reason "
               "for not pursuing large code pages\n(\"we do not pursue this "
               "direction further\", §4.3).\n";
  return 0;
}
