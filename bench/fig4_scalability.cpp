// Reproduces Figure 4: scalability of BT/CG/FT/SP/MG on the Opteron and
// Xeon(+HT) platforms with 4 KB vs 2 MB pages. One sub-table per
// application, mirroring the paper's five sub-plots: run time vs thread
// count for each (platform, page size) series. As in the paper, a single
// thread per core is used up to 4 threads; the Xeon's 8-thread point uses
// two SMT contexts per core.
//
// The whole grid runs through the experiment engine: every (kernel,
// platform, threads, page kind) point is an independent task on the
// work-stealing pool (--workers=, default one per host core), and results
// are bit-identical for any worker count. --json=fig4.json dumps the
// per-run records; repeated points already computed this process are
// served from the engine's result cache.
//
// Shape targets (paper §4.4): CG/SP/MG improve ~15-25% at 4 threads on the
// Opteron with 2 MB pages; BT and FT see no significant change; both
// platforms scale 1→4; the Xeon fails to scale 4→8 because its SMT flushes
// the pipeline on context switches, but 2 MB pages still help SP at 8
// threads.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));

  exec::SweepSpec spec = exec::SweepSpec::figure4(klass);
  spec.kernels = bench::kernels_from(opts);

  // --paging=native,hugetlb2m,huge1g,thp swaps the 4KB/2MB layout columns
  // for paging-policy columns: the layout axis collapses to 4 KB (every
  // policy reinterprets the same address stream) and each sub-table shows
  // run time per policy with improvement vs the first policy listed.
  const bool paging_axis = !opts.get("paging", "").empty();
  if (paging_axis) {
    spec.page_kinds = {PageKind::small4k};
    spec.paging_policies = bench::paging_from(opts);
  }

  exec::ExperimentEngine engine = bench::make_engine(opts);
  const exec::SweepResult result = engine.run(spec);
  bench::require_all_verified(result);

  std::cout << "Figure 4: Scalability with "
            << (paging_axis ? "paging policies" : "4KB and 2MB pages")
            << " (class " << npb::klass_name(klass)
            << "; times in simulated seconds; " << result.workers
            << " workers, " << format_seconds(result.wall_ms / 1e3)
            << "s wall)\n";

  const std::string opteron = sim::ProcessorSpec::opteron270().name;
  const std::string xeon = sim::ProcessorSpec::xeon_ht().name;
  if (paging_axis) {
    for (npb::Kernel k : spec.kernels) {
      const std::string kernel = npb::kernel_name(k);
      std::cout << "\n--- " << kernel << " (Opteron) ---\n";
      std::vector<std::string> header = {"threads"};
      for (const paging::PolicySpec& p : spec.paging_policies) {
        header.push_back(p.name());
      }
      for (std::size_t i = 1; i < spec.paging_policies.size(); ++i) {
        header.push_back(std::string(spec.paging_policies[i].name()) +
                         " improv");
      }
      TextTable table(header);
      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const exec::RunRecord* base =
            result.find(kernel, opteron, threads, "4KB",
                        spec.paging_policies.front().name());
        if (base == nullptr) continue;
        std::vector<std::string> row{std::to_string(threads)};
        for (const paging::PolicySpec& p : spec.paging_policies) {
          const exec::RunRecord* r =
              result.find(kernel, opteron, threads, "4KB", p.name());
          row.push_back(r ? format_seconds(r->simulated_seconds) : "-");
        }
        for (std::size_t i = 1; i < spec.paging_policies.size(); ++i) {
          const exec::RunRecord* r = result.find(
              kernel, opteron, threads, "4KB", spec.paging_policies[i].name());
          row.push_back(r ? bench::improvement(base->simulated_seconds,
                                               r->simulated_seconds)
                          : "-");
        }
        table.add_row(std::move(row));
      }
      table.print();
    }
    bench::write_json(opts, result);
    return 0;
  }
  for (npb::Kernel k : spec.kernels) {
    const std::string kernel = npb::kernel_name(k);
    std::cout << "\n--- " << kernel << " ---\n";
    TextTable table({"threads", "opteron-4KB", "opteron-2MB", "opt. improv",
                     "xeon-4KB", "xeon-2MB", "xeon improv"});
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row{std::to_string(threads)};
      const exec::RunRecord* o4k = result.find(kernel, opteron, threads, "4KB");
      const exec::RunRecord* o2m = result.find(kernel, opteron, threads, "2MB");
      if (o4k != nullptr && o2m != nullptr) {
        row.push_back(format_seconds(o4k->simulated_seconds));
        row.push_back(format_seconds(o2m->simulated_seconds));
        row.push_back(bench::improvement(o4k->simulated_seconds,
                                         o2m->simulated_seconds));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
      const exec::RunRecord* x4k = result.find(kernel, xeon, threads, "4KB");
      const exec::RunRecord* x2m = result.find(kernel, xeon, threads, "2MB");
      row.push_back(format_seconds(x4k->simulated_seconds));
      row.push_back(format_seconds(x2m->simulated_seconds));
      row.push_back(bench::improvement(x4k->simulated_seconds,
                                       x2m->simulated_seconds));
      table.add_row(std::move(row));
    }
    table.print();
  }
  bench::write_json(opts, result);
  return 0;
}
