// Reproduces Figure 4: scalability of BT/CG/FT/SP/MG on the Opteron and
// Xeon(+HT) platforms with 4 KB vs 2 MB pages. One sub-table per
// application, mirroring the paper's five sub-plots: run time vs thread
// count for each (platform, page size) series. As in the paper, a single
// thread per core is used up to 4 threads; the Xeon's 8-thread point uses
// two SMT contexts per core.
//
// Shape targets (paper §4.4): CG/SP/MG improve ~15-25% at 4 threads on the
// Opteron with 2 MB pages; BT and FT see no significant change; both
// platforms scale 1→4; the Xeon fails to scale 4→8 because its SMT flushes
// the pipeline on context switches, but 2 MB pages still help SP at 8
// threads.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();
  const sim::ProcessorSpec xeon = sim::ProcessorSpec::xeon_ht();

  std::cout << "Figure 4: Scalability with 4KB and 2MB pages (class "
            << npb::klass_name(klass)
            << "; times in simulated seconds)\n";

  for (npb::Kernel k : bench::kernels_from(opts)) {
    std::cout << "\n--- " << npb::kernel_name(k) << " ---\n";
    TextTable table({"threads", "opteron-4KB", "opteron-2MB", "opt. improv",
                     "xeon-4KB", "xeon-2MB", "xeon improv"});
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row{std::to_string(threads)};
      if (threads <= opteron.max_threads()) {
        const double t4k =
            bench::run_checked(k, klass, opteron, threads, PageKind::small4k)
                .simulated_seconds;
        const double t2m =
            bench::run_checked(k, klass, opteron, threads, PageKind::large2m)
                .simulated_seconds;
        row.push_back(format_seconds(t4k));
        row.push_back(format_seconds(t2m));
        row.push_back(bench::improvement(t4k, t2m));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
      const double x4k =
          bench::run_checked(k, klass, xeon, threads, PageKind::small4k)
              .simulated_seconds;
      const double x2m =
          bench::run_checked(k, klass, xeon, threads, PageKind::large2m)
              .simulated_seconds;
      row.push_back(format_seconds(x4k));
      row.push_back(format_seconds(x2m));
      row.push_back(bench::improvement(x4k, x2m));
      table.add_row(std::move(row));
    }
    table.print();
  }
  return 0;
}
