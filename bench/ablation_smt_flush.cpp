// Ablation for §3.2 "SMT DTLB Context Switching Time" / §4.4: how the
// Xeon's pipeline-flush-on-context-switch SMT implementation determines
// 4→8-thread (non-)scaling, by sweeping the flush penalty.
//
// The paper attributes the Xeon's failure to scale from 4 to 8 threads to
// this flush ("we attribute this to the implementation of SMT on the Intel
// Xeons which flush the entire pipeline on a thread context switch"). With
// the penalty at 0 the model degenerates to ideal (Niagara-style) SMT and
// 8 threads help; as the penalty grows, 8 threads become a slowdown — and
// 2 MB pages claw some of it back by removing page-walk long stalls, which
// is why SP still improves 13% at 8 threads in the paper.
//
// Uses the engine's explicit task-list API: every (flush, page kind) cell
// is an independent RunTask carrying its own CostModel, so the whole sweep
// fans out across --workers= and each distinct cost model gets its own
// result-cache entry. The tasks are trace-backed (--strategy=live runs
// everything plain):
// the flush axis re-simulates only four distinct address streams
// (threads × page kind), so the kernel numerics run four times, not
// fourteen.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const npb::Kernel kernel =
      bench::kernels_from(opts).empty() ? npb::Kernel::SP
                                        : bench::kernels_from(opts).front();
  const std::vector<cycles_t> flushes = {0, 50, 100, 200, 400, 800};

  std::cout << "Ablation (paper §4.4): Xeon 8-thread scaling vs SMT "
               "pipeline-flush penalty (" << npb::kernel_name(kernel)
            << ", class " << npb::klass_name(klass) << ")\n\n";

  const sim::ProcessorSpec xeon = sim::ProcessorSpec::xeon_ht();
  auto task_for = [&](unsigned threads, PageKind kind, cycles_t flush) {
    exec::RunTask task;
    task.kernel = kernel;
    task.klass = klass;
    task.spec = xeon;
    task.cost.smt_flush = flush;
    task.threads = threads;
    task.page_kind = kind;
    task.trace_backed =
        bench::strategy_from(opts) != exec::Strategy::Live;
    return task;
  };

  // 4-thread baselines (flush cost irrelevant: one thread per core) plus
  // the full 8-thread flush × page-kind grid, as one parallel bag.
  std::vector<exec::RunTask> tasks;
  tasks.push_back(task_for(4, PageKind::small4k, sim::CostModel{}.smt_flush));
  tasks.push_back(task_for(4, PageKind::large2m, sim::CostModel{}.smt_flush));
  for (cycles_t flush : flushes) {
    tasks.push_back(task_for(8, PageKind::small4k, flush));
    tasks.push_back(task_for(8, PageKind::large2m, flush));
  }

  exec::ExperimentEngine engine = bench::make_engine(opts);
  const exec::SweepResult result = engine.run(tasks);
  bench::require_all_verified(result);

  const double t4_4k = result.records[0].simulated_seconds;
  const double t4_2m = result.records[1].simulated_seconds;
  std::cout << "4-thread baseline: 4KB " << format_seconds(t4_4k) << "s, 2MB "
            << format_seconds(t4_2m) << "s\n\n";

  TextTable table({"flush cycles", "8T 4KB", "8T/4T 4KB", "8T 2MB",
                   "8T/4T 2MB", "2MB improv at 8T"});
  for (std::size_t i = 0; i < flushes.size(); ++i) {
    const double t8_4k = result.records[2 + 2 * i].simulated_seconds;
    const double t8_2m = result.records[3 + 2 * i].simulated_seconds;
    table.add_row({std::to_string(flushes[i]), format_seconds(t8_4k),
                   format_ratio(t8_4k / t4_4k), format_seconds(t8_2m),
                   format_ratio(t8_2m / t4_2m),
                   bench::improvement(t8_4k, t8_2m)});
  }
  table.print();
  std::cout << "\n8T/4T > 1 means eight threads run *slower* than four — the "
               "paper's observed\nXeon behaviour emerges once the flush "
               "penalty is non-trivial.\n";
  bench::write_json(opts, result);
  return 0;
}
