// Ablation for §3.2 "SMT DTLB Context Switching Time" / §4.4: how the
// Xeon's pipeline-flush-on-context-switch SMT implementation determines
// 4→8-thread (non-)scaling, by sweeping the flush penalty.
//
// The paper attributes the Xeon's failure to scale from 4 to 8 threads to
// this flush ("we attribute this to the implementation of SMT on the Intel
// Xeons which flush the entire pipeline on a thread context switch"). With
// the penalty at 0 the model degenerates to ideal (Niagara-style) SMT and
// 8 threads help; as the penalty grows, 8 threads become a slowdown — and
// 2 MB pages claw some of it back by removing page-walk long stalls, which
// is why SP still improves 13% at 8 threads in the paper.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const npb::Kernel kernel =
      bench::kernels_from(opts).empty() ? npb::Kernel::SP
                                        : bench::kernels_from(opts).front();

  std::cout << "Ablation (paper §4.4): Xeon 8-thread scaling vs SMT "
               "pipeline-flush penalty (" << npb::kernel_name(kernel)
            << ", class " << npb::klass_name(klass) << ")\n\n";

  sim::ProcessorSpec xeon = sim::ProcessorSpec::xeon_ht();

  // 4-thread baselines (flush cost irrelevant: one thread per core).
  const double t4_4k = bench::run_checked(kernel, klass, xeon, 4,
                                          PageKind::small4k)
                           .simulated_seconds;
  const double t4_2m = bench::run_checked(kernel, klass, xeon, 4,
                                          PageKind::large2m)
                           .simulated_seconds;
  std::cout << "4-thread baseline: 4KB " << format_seconds(t4_4k) << "s, 2MB "
            << format_seconds(t4_2m) << "s\n\n";

  TextTable table({"flush cycles", "8T 4KB", "8T/4T 4KB", "8T 2MB",
                   "8T/4T 2MB", "2MB improv at 8T"});
  for (cycles_t flush : {cycles_t{0}, cycles_t{50}, cycles_t{100},
                         cycles_t{200}, cycles_t{400}, cycles_t{800}}) {
    core::RuntimeConfig cfg4k = bench::make_config(xeon, 8, PageKind::small4k);
    cfg4k.sim->cost.smt_flush = flush;
    core::RuntimeConfig cfg2m = bench::make_config(xeon, 8, PageKind::large2m);
    cfg2m.sim->cost.smt_flush = flush;

    const double t8_4k =
        npb::run_kernel(kernel, klass, cfg4k).simulated_seconds;
    const double t8_2m =
        npb::run_kernel(kernel, klass, cfg2m).simulated_seconds;
    table.add_row({std::to_string(flush), format_seconds(t8_4k),
                   format_ratio(t8_4k / t4_4k), format_seconds(t8_2m),
                   format_ratio(t8_2m / t4_2m),
                   bench::improvement(t8_4k, t8_2m)});
  }
  table.print();
  std::cout << "\n8T/4T > 1 means eight threads run *slower* than four — the "
               "paper's observed\nXeon behaviour emerges once the flush "
               "penalty is non-trivial.\n";
  return 0;
}
