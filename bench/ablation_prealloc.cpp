// Ablation for §3.3 "Large Page Allocation": startup preallocation (the
// paper's design) versus on-demand huge-page allocation from the buddy
// allocator, under increasing physical-memory fragmentation.
//
// The experiment fragments simulated physical memory by allocating a large
// population of 4 KB frames and freeing a random fraction, then compares:
//   (a) pool take  — O(1) pop from a hugetlbfs pool reserved at boot;
//   (b) on-demand  — buddy allocation of a 2 MB block at request time:
//       allocation work (list probes + splits) grows and eventually the
//       request *fails* outright because no aligned 512-frame run exists.
// This is why "preallocation of large pages is likely to reduce the
// complexity of the allocation algorithm and also the latency" (paper
// §3.3) — and why the runtime reserves its whole shared image at startup.
#include "mem/hugetlbfs.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#include <iostream>
#include <vector>

using namespace lpomp;

namespace {

struct TrialResult {
  double avg_work = 0.0;
  std::size_t failures = 0;
  std::size_t attempts = 0;
};

/// Fragments `pm` by allocating `total_frames` 4 KB frames and freeing a
/// `free_fraction` random subset.
std::vector<paddr_t> fragment(mem::PhysMem& pm, std::size_t total_frames,
                              double free_fraction, Rng& rng) {
  std::vector<paddr_t> held;
  held.reserve(total_frames);
  for (std::size_t i = 0; i < total_frames; ++i) {
    auto f = pm.alloc_small_frame();
    if (!f) break;
    held.push_back(*f);
  }
  // Free a random subset (Fisher-Yates prefix).
  const auto to_free =
      static_cast<std::size_t>(free_fraction * static_cast<double>(held.size()));
  for (std::size_t i = 0; i < to_free; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(
                                  rng.next_below(held.size() - i));
    std::swap(held[i], held[j]);
    pm.return_block(held[i], 0);
  }
  held.erase(held.begin(), held.begin() + static_cast<long>(to_free));
  return held;
}

TrialResult on_demand_trial(double fill, double free_fraction,
                            std::size_t requests) {
  mem::PhysMem pm(GiB(1));
  Rng rng(0xAB1E5EEDULL);
  const auto frames = static_cast<std::size_t>(
      fill * static_cast<double>(pm.total_bytes() / kSmallPageSize));
  const std::vector<paddr_t> held = fragment(pm, frames, free_fraction, rng);

  pm.reset_stats();
  TrialResult result;
  result.attempts = requests;
  std::vector<paddr_t> got;
  for (std::size_t i = 0; i < requests; ++i) {
    auto block = pm.alloc_huge_frame();
    if (!block) {
      ++result.failures;
    } else {
      got.push_back(*block);
    }
  }
  result.avg_work = requests
                        ? static_cast<double>(pm.stats().total_alloc_work) /
                              static_cast<double>(requests)
                        : 0.0;
  for (paddr_t b : got) pm.return_block(b, mem::PhysMem::kHugeOrder);
  for (paddr_t f : held) pm.return_block(f, 0);
  return result;
}

TrialResult pool_trial(std::size_t requests) {
  // Pool reserved at "boot", before any fragmentation exists.
  mem::PhysMem pm(GiB(1));
  mem::HugeTlbFs fs(pm, requests);
  TrialResult result;
  result.attempts = requests;
  std::vector<paddr_t> got;
  for (std::size_t i = 0; i < requests; ++i) {
    auto block = fs.take_block(mem::PhysMem::kHugeOrder);
    if (!block) {
      ++result.failures;
    } else {
      got.push_back(*block);
    }
  }
  result.avg_work = 1.0;  // O(1) pop per page
  for (paddr_t b : got) fs.return_block(b, mem::PhysMem::kHugeOrder);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 64));

  std::cout << "Ablation (paper §3.3): preallocated hugetlbfs pool vs "
               "on-demand 2MB allocation\nunder fragmentation (1 GiB "
               "simulated physical memory, " << requests
            << " x 2MB requests)\n\n";

  TextTable table({"fill", "freed", "on-demand work/alloc",
                   "on-demand failures", "pool work/alloc", "pool failures"});
  for (double fill : {0.25, 0.50, 0.75, 0.90}) {
    for (double freed : {0.30, 0.60}) {
      const TrialResult od = on_demand_trial(fill, freed, requests);
      const TrialResult pool = pool_trial(requests);
      table.add_row({format_percent(fill), format_percent(freed),
                     format_ratio(od.avg_work),
                     std::to_string(od.failures) + "/" +
                         std::to_string(od.attempts),
                     format_ratio(pool.avg_work),
                     std::to_string(pool.failures) + "/" +
                         std::to_string(pool.attempts)});
    }
  }
  table.print();
  std::cout << "\nConclusion: the boot-time pool never fails and costs O(1) "
               "per page; on-demand\nallocation degrades with fragmentation "
               "and fails outright at high fill — the\npaper's rationale for "
               "preallocating the whole shared image at startup.\n";
  return 0;
}
