// Reproduces Figure 3: aggregate instruction-TLB misses per second of run
// time for BT/CG/FT/SP/MG with 4 threads on the Opteron platform, with the
// application binary in 4 KB pages.
//
// The paper's point is that even the worst application (MG, ≈0.45
// misses/sec) pays ≈90 cycles/sec at a 200-cycle miss penalty — so ITLB
// misses are never worth optimising with large pages, and only the *data*
// TLB matters. The reproduction's simulated runs are shorter than class-B
// wall times, so the absolute rates are scaled up, but the conclusion is
// identical: the per-second miss *cost* is orders of magnitude below the
// 2×10⁹ cycles available per second.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const auto threads = static_cast<unsigned>(opts.get_int("threads", 4));
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();

  std::cout << "Figure 3: Aggregate ITLB misses/second, " << threads
            << " threads, " << opteron.name << ", binary in 4KB pages (class "
            << npb::klass_name(klass) << ")\n\n";

  TextTable table({"Application", "ITLB misses", "run (sim s)", "misses/sec",
                   "miss cycles/sec", "fraction of cycle budget"});
  for (npb::Kernel k : bench::kernels_from(opts)) {
    const npb::NpbResult r =
        bench::run_checked(k, klass, opteron, threads, PageKind::small4k);
    const double rate = r.profile.rate(prof::ProfileReport::kItlbMiss);
    const double cycles_per_sec = rate * 200.0;  // paper's 200-cycle estimate
    table.add_row({npb::kernel_name(k),
                   std::to_string(r.profile.count(prof::ProfileReport::kItlbMiss)),
                   format_seconds(r.simulated_seconds),
                   format_ratio(rate), format_ratio(cycles_per_sec),
                   format_percent(cycles_per_sec / 2e9)});
  }
  table.print();
  std::cout << "\nConclusion (as in the paper): the ITLB miss rate is not a "
               "significant overhead;\nlarge pages for the instruction image "
               "are not pursued.\n";
  return 0;
}
