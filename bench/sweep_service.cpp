// sweep_service — the persistent sweep daemon.
//
//   sweep_service [--shm=/lpomp-sweep] [--store-dir=PATH] [--workers=N]
//                 [--strategy=live|recorded|multilane|analytic|auto]
//                 [--slots=8] [--slot-mb=1] [--trace-store-mb=2048]
//
// Creates the shared-memory request ring and serves sweep_client
// submissions until SIGTERM/SIGINT: each request is decoded, run through
// one long-lived exec::Scheduler, and answered with the result JSON. With
// --store-dir= every completed RunRecord is persisted content-addressed on
// disk, so a repeated grid point — from any client, before or after a
// daemon restart — is answered from the store in microseconds instead of
// being re-simulated. The per-request strategy (from the client) overrides
// the daemon default given here.
//
// On shutdown the daemon prints a one-line stats JSON (requests served,
// ring queue peak, store hit/miss/byte counters) and exits 0; the ring
// segment is unlinked, the store directory stays.
#include <csignal>
#include <iostream>

#include "bench/bench_common.hpp"
#include "serve/service.hpp"

using namespace lpomp;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  serve::SweepService::Config cfg;
  cfg.shm_name = opts.get("shm", "/lpomp-sweep");
  cfg.slots = static_cast<std::uint32_t>(opts.get_int("slots", 8));
  cfg.slot_bytes = MiB(static_cast<std::size_t>(opts.get_int("slot-mb", 1)));
  cfg.scheduler.workers = static_cast<unsigned>(opts.get_int("workers", 0));
  cfg.scheduler.trace_store_bytes =
      MiB(static_cast<std::size_t>(opts.get_int("trace-store-mb", 2048)));
  cfg.scheduler.strategy = bench::strategy_from(opts);
  cfg.scheduler.store_dir = opts.get("store-dir", "");

  try {
    serve::SweepService service(cfg);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    std::cout << "sweep_service: serving on " << service.ring().name() << " ("
              << service.ring().slots() << " slots x "
              << format_bytes(service.ring().slot_bytes()) << "), "
              << service.scheduler().workers() << " workers, strategy "
              << exec::strategy_name(cfg.scheduler.strategy);
    if (const exec::DiskResultStore* store =
            service.scheduler().disk_store()) {
      std::cout << ", store " << store->root() << " (" << store->size()
                << " entries)";
    } else {
      std::cout << ", no persistent store (--store-dir= to enable)";
    }
    std::cout << std::endl;

    service.serve(g_stop);

    std::cout << service.stats_json() << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "sweep_service: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
