// Ablation for the paper's future work (§6): "Ideally, the kernel and
// memory allocation library should be able to allocate a mix of large
// pages for the bigger allocations and the typical 4KB pages for the
// smaller allocations."
//
// A synthetic application image with a few large arrays and many small
// ones is mapped under three policies — all-4KB, all-2MB, and mixed
// (2 MB only for allocations ≥ 2 MB) — and a workload streaming the large
// arrays while hopping among the small ones is simulated. Metrics: mapped
// memory vs requested (internal fragmentation waste), DTLB walks, cycles.
//
// Expected: all-2MB wastes ~2 MB per small allocation and burns the small
// 2 MB TLB banks on scattered small objects; mixed keeps the all-2MB
// performance on the big arrays with the all-4KB memory efficiency.
#include "sim/machine.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

#include <functional>
#include <iostream>
#include <vector>

using namespace lpomp;

namespace {

struct Alloc {
  std::size_t bytes;
  bool big;
};

struct PolicyResult {
  std::size_t requested = 0;
  std::size_t mapped = 0;
  count_t walks = 0;
  cycles_t cycles = 0;
};

PolicyResult run_policy(const std::vector<Alloc>& allocs,
                        const std::function<PageKind(std::size_t)>& policy,
                        count_t iterations) {
  mem::PhysMem pm(GiB(2));
  mem::AddressSpace space(pm);

  struct Mapped {
    mem::Region region;
    bool big;
  };
  std::vector<Mapped> regions;
  PolicyResult result;
  for (const Alloc& a : allocs) {
    const PageKind kind = policy(a.bytes);
    regions.push_back({space.map_region(a.bytes, kind,
                                        a.big ? "big" : "small"),
                       a.big});
    result.requested += a.bytes;
  }
  result.mapped = space.mapped_bytes();

  sim::Machine machine(sim::ProcessorSpec::opteron270(), sim::CostModel{},
                       space, 1);
  machine.begin_parallel();
  sim::ThreadSim& t = machine.thread(0);
  Rng rng(0x717ABBA5ULL);

  // Workload: stream each big array; between big-array rows, touch a burst
  // of random small objects (metadata / control structures).
  for (count_t it = 0; it < iterations; ++it) {
    for (const Mapped& m : regions) {
      if (!m.big) continue;
      for (vaddr_t off = 0; off < m.region.length; off += 64) {
        t.touch(m.region.base + off, m.region.kind, Access::load);
        if ((off & 0xFFF) == 0) {
          // Hop to a few random small allocations.
          for (int hop = 0; hop < 4; ++hop) {
            const Mapped& s =
                regions[static_cast<std::size_t>(rng.next_below(regions.size()))];
            const vaddr_t so =
                rng.next_below(s.region.length / 8) * 8;
            t.touch(s.region.base + so, s.region.kind, Access::load);
          }
        }
      }
    }
  }
  machine.end_parallel();
  machine.end_run();
  result.walks = machine.totals().dtlb_walk_total();
  result.cycles = machine.total_cycles();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto iterations = static_cast<count_t>(opts.get_int("iterations", 2));

  // 3 big arrays + 192 small allocations (16-64 KB), like a real runtime's
  // mix of data arrays and control blocks.
  std::vector<Alloc> allocs;
  for (int i = 0; i < 3; ++i) allocs.push_back({MiB(8), true});
  Rng rng(0x5EEDFULL);
  for (int i = 0; i < 192; ++i) {
    allocs.push_back({KiB(16) + rng.next_below(4) * KiB(16), false});
  }

  std::cout << "Ablation (paper §6 future work): mixed page-size allocation "
               "policy\n(3 x 8MB arrays + 192 small 16-64KB allocations, "
               "Opteron geometry)\n\n";

  const auto all4k = [](std::size_t) { return PageKind::small4k; };
  const auto all2m = [](std::size_t) { return PageKind::large2m; };
  const auto mixed = [](std::size_t bytes) {
    return bytes >= kLargePageSize ? PageKind::large2m : PageKind::small4k;
  };

  TextTable table({"policy", "requested", "mapped", "waste", "DTLB walks",
                   "cycles", "vs all-4KB"});
  const PolicyResult base = run_policy(allocs, all4k, iterations);
  for (auto& [name, policy] :
       std::vector<std::pair<std::string, std::function<PageKind(std::size_t)>>>{
           {"all-4KB", all4k}, {"all-2MB", all2m}, {"mixed", mixed}}) {
    const PolicyResult r = run_policy(allocs, policy, iterations);
    table.add_row(
        {name, format_bytes(r.requested), format_bytes(r.mapped),
         format_bytes(r.mapped - r.requested), format_count(r.walks),
         format_count(r.cycles),
         format_percent(1.0 - static_cast<double>(r.cycles) /
                                  static_cast<double>(base.cycles))});
  }
  table.print();
  std::cout << "\nMixed keeps (nearly) the all-2MB cycle savings at a small "
               "fraction of its\nmemory waste — the allocator the paper asks "
               "future kernels to provide.\n";
  return 0;
}
