// google-benchmark microbenchmarks of the library's building blocks: how
// fast the *simulator itself* runs on the host. These guard the
// instrumentation hot path (ThreadSim::touch) that every figure bench
// drives billions of times, plus the runtime primitives.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "core/runtime.hpp"
#include "dsm/msg_channel.hpp"
#include "mem/hugetlbfs.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "tlb/tlb_hierarchy.hpp"

using namespace lpomp;

namespace {

void BM_TlbLookupHit(benchmark::State& state) {
  tlb::Tlb t({"bench", {32, 32}, {8, 8}, {0, 0}});
  t.insert(42, PageKind::small4k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(42, PageKind::small4k));
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_TlbLookupMissFill(benchmark::State& state) {
  tlb::Tlb t({"bench", {32, 32}, {8, 8}, {0, 0}});
  vpn_t vpn = 0;
  for (auto _ : state) {
    if (!t.lookup(vpn, PageKind::small4k)) t.insert(vpn, PageKind::small4k);
    ++vpn;
  }
}
BENCHMARK(BM_TlbLookupMissFill);

void BM_CacheAccessSequential(benchmark::State& state) {
  cache::Cache c("bench", {MiB(1), 64, 16});
  vaddr_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(addr, false));
    addr += 8;
  }
}
BENCHMARK(BM_CacheAccessSequential);

void BM_PageWalk(benchmark::State& state) {
  mem::PhysMem pm(MiB(64));
  mem::AddressSpace space(pm);
  const mem::Region r = space.map_region(MiB(16), PageKind::small4k, "walk");
  Rng rng(7);
  for (auto _ : state) {
    const vaddr_t a = r.base + rng.next_below(r.length / 8) * 8;
    benchmark::DoNotOptimize(space.translate(a));
  }
}
BENCHMARK(BM_PageWalk);

void BM_ThreadSimTouchSequential(benchmark::State& state) {
  mem::PhysMem pm(MiB(128));
  mem::AddressSpace space(pm);
  const mem::Region r = space.map_region(MiB(64), PageKind::small4k, "data");
  sim::Machine machine(sim::ProcessorSpec::opteron270(), sim::CostModel{},
                       space, 1);
  machine.begin_parallel();
  sim::ThreadSim& t = machine.thread(0);
  vaddr_t off = 0;
  for (auto _ : state) {
    t.touch(r.base + off, PageKind::small4k, Access::load);
    off = (off + 8) % r.length;
  }
  machine.end_parallel();
}
BENCHMARK(BM_ThreadSimTouchSequential);

void BM_ThreadSimTouchRandom(benchmark::State& state) {
  mem::PhysMem pm(MiB(128));
  mem::AddressSpace space(pm);
  const mem::Region r = space.map_region(MiB(64), PageKind::small4k, "data");
  sim::Machine machine(sim::ProcessorSpec::opteron270(), sim::CostModel{},
                       space, 1);
  machine.begin_parallel();
  sim::ThreadSim& t = machine.thread(0);
  Rng rng(11);
  for (auto _ : state) {
    t.touch(r.base + rng.next_below(r.length / 8) * 8, PageKind::small4k,
            Access::load);
  }
  machine.end_parallel();
}
BENCHMARK(BM_ThreadSimTouchRandom);

void BM_BuddyAllocFree2MB(benchmark::State& state) {
  mem::PhysMem pm(MiB(256));
  for (auto _ : state) {
    auto b = pm.alloc_huge_frame();
    pm.return_block(*b, mem::PhysMem::kHugeOrder);
  }
}
BENCHMARK(BM_BuddyAllocFree2MB);

void BM_HugeTlbFsTakeReturn(benchmark::State& state) {
  mem::PhysMem pm(MiB(256));
  mem::HugeTlbFs fs(pm, 64);
  for (auto _ : state) {
    auto b = fs.take_block(mem::PhysMem::kHugeOrder);
    fs.return_block(*b, mem::PhysMem::kHugeOrder);
  }
}
BENCHMARK(BM_HugeTlbFsTakeReturn);

void BM_MsgChannelPingPong(benchmark::State& state) {
  dsm::MsgChannel ch(2);
  const std::uint64_t payload = 42;
  for (auto _ : state) {
    ch.send_value(0, 1, payload);
    benchmark::DoNotOptimize(ch.recv_value<std::uint64_t>(1, 0));
  }
}
BENCHMARK(BM_MsgChannelPingPong);

void BM_ParallelRegionForkJoin(benchmark::State& state) {
  core::RuntimeConfig cfg;
  cfg.num_threads = static_cast<unsigned>(state.range(0));
  cfg.shared_pool_bytes = MiB(1);
  core::Runtime rt(cfg);
  for (auto _ : state) {
    rt.parallel([](core::ThreadCtx& ctx) { benchmark::DoNotOptimize(ctx.tid()); });
  }
}
BENCHMARK(BM_ParallelRegionForkJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_Reduction(benchmark::State& state) {
  core::RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.shared_pool_bytes = MiB(1);
  core::Runtime rt(cfg);
  for (auto _ : state) {
    double out = 0.0;
    rt.parallel([&out](core::ThreadCtx& ctx) {
      const double r = ctx.reduce(1.0, std::plus<>{});
      if (ctx.tid() == 0) out = r;
    });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Reduction);

}  // namespace

BENCHMARK_MAIN();
