// Trace workbench: record kernel access traces to files, replay them on any
// platform/cost configuration, and analyse their locality structure.
//
//   trace_tools record    --kernel=CG --klass=S --threads=4 --pages=2MB
//                         --out=cg.lptrace [--platform=opteron] [--seed=N]
//   trace_tools replay    --in=cg.lptrace [--platform=xeon] [--seed=N]
//                         [--code-pages=4KB] [--check]
//                         [--strategy=analytic|recorded]
//   trace_tools multilane --in=cg.lptrace [--seed=N] [--check]
//   trace_tools bench     --in=cg_s.lptrace,cg_w.lptrace [--repeat=10]
//                         [--json-out=FILE]
//   trace_tools stats     --in=cg.lptrace
//
// `record` runs the kernel live with the recorder attached and writes the
// compressed trace. `replay` re-drives the simulator from the file — by
// default from a compiled TracePlan with the analytic fast-forward tier,
// interpreted with --strategy=recorded (--no-analytic remains an alias) —
// and prints the profile; with --check it
// also runs the same config live and verifies every counter matches
// bit-for-bit. `multilane` replays the file once onto the whole platform ×
// code-page grid — every grid point is a lane of one MultiReplayDriver
// pass, so the trace is decoded exactly once; with --check each lane is
// also compared counter-for-counter against its standalone single-lane
// replay. `bench` times the interpreted and analytic per-replay paths
// (minimum of --repeat runs each, plan compiled once) and asserts they
// agree counter-for-counter — the replay micro-benchmark CI gates on.
// `stats` decodes the trace and prints stride histograms, hot-page counts
// and reuse-distance profiles at 4 KB and 2 MB granularity — the
// quantities that explain which kernels large pages help.
#include <algorithm>
#include <chrono>

#include "bench/bench_common.hpp"
#include "exec/json.hpp"
#include "trace/io.hpp"
#include "trace/lane.hpp"
#include "trace/plan.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "trace/stats.hpp"

using namespace lpomp;

namespace {

PageKind pages_from(const Options& opts, const char* key) {
  const std::string v = opts.get(key, "4KB");
  if (v == "2MB" || v == "2mb" || v == "large") return PageKind::large2m;
  return PageKind::small4k;
}

void print_profile(const prof::ProfileReport& profile, double seconds) {
  profile.print(std::cout);
  std::cout << "simulated time: " << format_seconds(seconds) << "s\n";
}

int cmd_record(const Options& opts) {
  const std::string out = opts.get("out", "");
  if (out.empty()) {
    std::cerr << "record: need --out=<file>\n";
    return 2;
  }
  const npb::Kernel kernel = trace::kernel_from_name(opts.get("kernel", "CG"));
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "S"));
  const sim::ProcessorSpec spec =
      bench::platform_by_name(opts.get("platform", "opteron"));
  const unsigned threads = static_cast<unsigned>(opts.get_int("threads", 4));
  const PageKind pages = pages_from(opts, "pages");
  const PageKind code_pages = pages_from(opts, "code-pages");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 0x5eed));

  trace::TraceRecorder recorder(threads);
  core::RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.page_kind = pages;
  cfg.code_page_kind = code_pages;
  cfg.sim = core::SimConfig{spec, sim::CostModel{}, seed};
  cfg.trace_sink = &recorder;
  const npb::NpbResult r = npb::run_kernel(kernel, klass, cfg);
  if (!r.verified) {
    std::cerr << "record: kernel failed verification — not writing a trace\n";
    return 2;
  }

  trace::TraceMeta meta;
  meta.kernel = npb::kernel_name(kernel);
  meta.klass = npb::klass_name(klass);
  meta.threads = threads;
  meta.page_kind = pages;
  meta.platform = spec.name;
  meta.code_page_kind = code_pages;
  meta.seed = seed;
  meta.verified = r.verified;
  meta.checksum = r.checksum;
  const trace::Trace trace = recorder.finish(std::move(meta));
  trace::save_trace_file(out, trace);

  std::size_t bytes = 0;
  for (const std::string& s : trace.streams) bytes += s.size();
  std::cout << "recorded " << trace.key() << ": "
            << format_count(trace.meta.accesses) << " accesses, "
            << trace.boundaries.size() << " boundaries, "
            << format_bytes(bytes) << " encoded ("
            << format_ratio(8.0 * static_cast<double>(bytes) /
                            static_cast<double>(trace.meta.accesses))
            << " bits/access) -> " << out << "\n";
  print_profile(r.profile, r.simulated_seconds);
  return 0;
}

int cmd_replay(const Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) {
    std::cerr << "replay: need --in=<file>\n";
    return 2;
  }
  const trace::Trace trace = trace::load_trace_file(in);
  trace::ReplayConfig cfg;
  cfg.spec = bench::platform_by_name(opts.get("platform", "opteron"));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0x5eed));
  cfg.code_page_kind = pages_from(opts, "code-pages");
  // For a single-file replay the strategy axis collapses to analytic
  // (compiled plan + fast-forward) vs recorded (interpreted); the shared
  // parser still handles the deprecated --no-analytic alias.
  switch (bench::strategy_from(opts)) {
    case exec::Strategy::Auto:
    case exec::Strategy::Analytic:
      cfg.analytic = true;
      break;
    case exec::Strategy::Recorded:
    case exec::Strategy::Multilane:
      cfg.analytic = false;
      break;
    case exec::Strategy::Live:
      std::cerr << "replay: --strategy=live makes no sense for a trace "
                   "replay (use --strategy=analytic or recorded)\n";
      return 2;
  }

  std::cout << "replaying " << trace.key() << " (recorded on "
            << trace.meta.platform << ") on " << cfg.spec.name
            << (cfg.analytic ? " [analytic]" : " [interpreted]") << "\n";
  const trace::ReplayOutcome out =
      cfg.analytic
          ? trace::ReplayDriver(cfg).run(trace,
                                         *trace::TracePlan::compile(trace))
          : trace::ReplayDriver(cfg).run(trace);
  print_profile(out.profile, out.simulated_seconds);

  if (opts.get_flag("check")) {
    exec::RunTask task;
    task.kernel = trace::kernel_from_name(trace.meta.kernel);
    task.klass = trace::klass_from_name(trace.meta.klass);
    task.spec = cfg.spec;
    task.cost = cfg.cost;
    task.threads = trace.meta.threads;
    task.page_kind = trace.meta.page_kind;
    task.code_page_kind = cfg.code_page_kind;
    task.seed = cfg.seed;
    const exec::RunRecord live = exec::ExperimentEngine::execute_task(task);
    const bool same =
        live.cycles == out.profile.count(prof::ProfileReport::kCycles) &&
        live.simulated_seconds == out.simulated_seconds &&
        live.accesses == out.profile.count(prof::ProfileReport::kAccesses);
    std::cout << "live check: counters "
              << (same ? "identical" : "DIFFER") << "\n";
    if (!same) return 1;
  }
  return 0;
}

int cmd_multilane(const Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) {
    std::cerr << "multilane: need --in=<file>\n";
    return 2;
  }
  const trace::Trace trace = trace::load_trace_file(in);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 0x5eed));

  // The full replay-knob grid: both platforms × both code page kinds.
  // A platform without enough hardware contexts for the recorded thread
  // count cannot host a lane; it is skipped, not an error.
  std::vector<trace::ReplayConfig> cfgs;
  std::vector<std::string> skipped;
  for (const sim::ProcessorSpec& spec :
       {sim::ProcessorSpec::opteron270(), sim::ProcessorSpec::xeon_ht()}) {
    for (const PageKind code : {PageKind::small4k, PageKind::large2m}) {
      if (trace.meta.threads > spec.total_contexts()) {
        skipped.push_back(spec.name);
        continue;
      }
      trace::ReplayConfig c;
      c.spec = spec;
      c.seed = seed;
      c.code_page_kind = code;
      cfgs.push_back(c);
    }
  }
  if (cfgs.empty()) {
    std::cerr << "multilane: " << trace.meta.threads
              << " recorded threads fit no platform\n";
    return 2;
  }

  std::cout << "multi-lane replay of " << trace.key() << ": " << cfgs.size()
            << " lanes, one decode pass";
  if (!skipped.empty()) {
    std::cout << " (" << skipped.size() / 2 << " platform(s) skipped: too "
              << "few contexts)";
  }
  std::cout << "\n";

  const std::vector<trace::ReplayOutcome> outs =
      trace::MultiReplayDriver(cfgs).run(trace);

  const bool check = opts.get_flag("check");
  std::size_t mismatches = 0;
  std::vector<std::string> headers = {"platform", "code pages", "cycles",
                                      "simulated s"};
  if (check) headers.push_back("vs solo replay");
  TextTable table(headers);
  for (std::size_t lane = 0; lane < cfgs.size(); ++lane) {
    const trace::ReplayOutcome& out = outs[lane];
    std::vector<std::string> row = {
        cfgs[lane].spec.name,
        std::string(page_kind_name(cfgs[lane].code_page_kind)),
        format_count(out.profile.count(prof::ProfileReport::kCycles)),
        format_seconds(out.simulated_seconds)};
    if (check) {
      const trace::ReplayOutcome solo =
          trace::ReplayDriver(cfgs[lane]).run(trace);
      bool same = solo.simulated_seconds == out.simulated_seconds &&
                  solo.profile.events().size() == out.profile.events().size();
      for (std::size_t i = 0; same && i < solo.profile.events().size(); ++i) {
        same = solo.profile.events()[i].count == out.profile.events()[i].count;
      }
      if (!same) ++mismatches;
      row.push_back(same ? "identical" : "DIFFER");
    }
    table.add_row(row);
  }
  table.print();
  if (mismatches > 0) {
    std::cerr << "FAIL: " << mismatches
              << " lane(s) diverged from single-lane replay\n";
    return 1;
  }
  return 0;
}

/// One trace's bench measurements: min-of-repeat timings for the three
/// replay tiers, the analytic/interpreted speedup, an interpreted-vs-
/// analytic counter-identity verdict, and the trace's element-access count
/// (the scaling axis — the analytic tier's advantage grows with
/// accesses-per-line, which is why the reference carries both a class S
/// and a class W entry of the same kernel).
struct BenchEntry {
  std::string trace_key;
  std::uint64_t accesses = 0;
  double interp_ms = 0.0;
  double plan_interp_ms = 0.0;
  double analytic_ms = 0.0;
  double compile_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

BenchEntry bench_one(const std::string& path, const trace::ReplayConfig& cfg,
                     int repeat) {
  const trace::Trace trace = trace::load_trace_file(path);

  using clock = std::chrono::steady_clock;
  auto ms_of = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
        .count();
  };

  BenchEntry e;
  e.trace_key = trace.key();
  e.accesses = trace::analyze_trace(trace).element_accesses;

  const auto tc = clock::now();
  const std::shared_ptr<const trace::TracePlan> plan =
      trace::TracePlan::compile(trace);
  e.compile_ms = ms_of(tc);

  trace::ReplayConfig interp = cfg;
  interp.analytic = false;
  trace::ReplayConfig analytic = cfg;
  analytic.analytic = true;

  trace::ReplayOutcome out_i = trace::ReplayDriver(interp).run(trace);
  e.interp_ms = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = clock::now();
    out_i = trace::ReplayDriver(interp).run(trace);
    e.interp_ms = std::min(e.interp_ms, ms_of(t0));
  }
  // Plan + interpretation isolates the decode saving from the analytic
  // fast-forward saving in the table below.
  e.plan_interp_ms = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = clock::now();
    trace::ReplayDriver(interp).run(trace, *plan);
    e.plan_interp_ms = std::min(e.plan_interp_ms, ms_of(t0));
  }
  trace::ReplayOutcome out_a = trace::ReplayDriver(analytic).run(trace, *plan);
  e.analytic_ms = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = clock::now();
    out_a = trace::ReplayDriver(analytic).run(trace, *plan);
    e.analytic_ms = std::min(e.analytic_ms, ms_of(t0));
  }

  bool same = out_i.simulated_seconds == out_a.simulated_seconds &&
              out_i.profile.events().size() == out_a.profile.events().size();
  for (std::size_t i = 0; same && i < out_i.profile.events().size(); ++i) {
    same = out_i.profile.events()[i].count == out_a.profile.events()[i].count;
  }
  e.identical = same;
  e.speedup = e.analytic_ms > 0.0 ? e.interp_ms / e.analytic_ms : 0.0;
  return e;
}

/// Per-replay micro-benchmark: interpreted (stream decode + batched
/// interpreter) vs analytic (compiled plan + closed-form fast-forward),
/// minimum of --repeat runs each after one warm-up. The two paths must
/// agree counter-for-counter — a timing from diverging replays would be
/// meaningless — so the bench doubles as an identity check. --in accepts a
/// comma-separated trace list so one invocation measures the analytic
/// advantage across problem classes (it grows with accesses-per-line).
/// --json-out writes the machine-readable rows CI compares against its
/// committed reference (the speedup ratio is host-independent, so CI gates
/// on it).
int cmd_bench(const Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) {
    std::cerr << "bench: need --in=<file>[,<file>...]\n";
    return 2;
  }
  std::vector<std::string> paths;
  std::size_t start = 0;
  while (start <= in.size()) {
    std::size_t comma = in.find(',', start);
    if (comma == std::string::npos) comma = in.size();
    if (comma > start) paths.push_back(in.substr(start, comma - start));
    start = comma + 1;
  }
  const int repeat = std::max(1, static_cast<int>(opts.get_int("repeat", 10)));
  trace::ReplayConfig cfg;
  cfg.spec = bench::platform_by_name(opts.get("platform", "opteron"));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0x5eed));
  cfg.code_page_kind = pages_from(opts, "code-pages");

  std::vector<BenchEntry> entries;
  bool all_same = true;
  for (const std::string& path : paths) {
    const BenchEntry e = bench_one(path, cfg, repeat);
    all_same = all_same && e.identical;
    std::cout << "replay bench " << e.trace_key << " on " << cfg.spec.name
              << " (min of " << repeat << ", " << format_count(e.accesses)
              << " accesses):\n"
              << "  interpreted        " << format_ratio(e.interp_ms)
              << " ms/replay (stream decode + batched interpreter)\n"
              << "  plan+interpreted   " << format_ratio(e.plan_interp_ms)
              << " ms/replay (decode-free, fast-forward off)\n"
              << "  analytic           " << format_ratio(e.analytic_ms)
              << " ms/replay (plan compile " << format_ratio(e.compile_ms)
              << " ms, once per stream)\n"
              << "  speedup            " << format_ratio(e.speedup)
              << "x; counters " << (e.identical ? "identical" : "DIFFER")
              << "\n";
    entries.push_back(e);
  }

  const std::string json_path = opts.get("json-out", "");
  if (!json_path.empty()) {
    exec::JsonWriter w;
    w.begin_object();
    w.field("schema", "lpomp-bench-replay-v2");
    w.field("platform", cfg.spec.name);
    w.field("repeat", static_cast<std::uint64_t>(repeat));
    w.field("identical", all_same);
    w.key("entries");
    w.begin_array();
    for (const BenchEntry& e : entries) {
      w.begin_object();
      w.field("trace", e.trace_key);
      w.field("accesses", e.accesses);
      w.field("interpreted_ms", e.interp_ms);
      w.field("plan_interpreted_ms", e.plan_interp_ms);
      w.field("analytic_ms", e.analytic_ms);
      w.field("plan_compile_ms", e.compile_ms);
      w.field("speedup", e.speedup);
      w.field("identical", e.identical);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot write --json-out=" << json_path << "\n";
      return 2;
    }
    os << w.str() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return all_same ? 0 : 1;
}

void print_histogram(const char* title, const std::vector<std::uint64_t>& h,
                     std::uint64_t total) {
  std::cout << title << "\n";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    std::cout << "  [" << format_count(lo) << ", " << format_count(hi)
              << "]  " << format_count(h[i]) << "  ("
              << format_percent(static_cast<double>(h[i]) /
                                static_cast<double>(total))
              << ")\n";
  }
}

int cmd_stats(const Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) {
    std::cerr << "stats: need --in=<file>\n";
    return 2;
  }
  const trace::Trace trace = trace::load_trace_file(in);
  std::cout << "trace " << trace.key() << " recorded on "
            << trace.meta.platform << " (seed " << trace.meta.seed
            << ", code pages "
            << page_kind_name(trace.meta.code_page_kind) << ", checksum "
            << trace.meta.checksum << ")\n";

  const trace::TraceStats s = trace::analyze_trace(trace);
  std::cout << "events: " << format_count(s.touch_events) << " touch/run, "
            << format_count(s.compute_events) << " compute, " << s.segments
            << " boundaries\n";
  std::cout << "element accesses: " << format_count(s.element_accesses)
            << " (" << format_count(s.loads) << " loads, "
            << format_count(s.stores) << " stores), encoded in "
            << format_bytes(s.encoded_bytes) << " = "
            << format_ratio(s.bits_per_access()) << " bits/access\n";

  std::cout << "\nstride profile: " << format_percent(
                   static_cast<double>(s.strides.unit) /
                   static_cast<double>(std::max<std::uint64_t>(
                       1, s.strides.total())))
            << " unit-stride, " << format_count(s.strides.forward)
            << " forward vs " << format_count(s.strides.backward)
            << " backward\n";
  print_histogram("stride magnitude histogram (bytes):", s.strides.buckets,
                  std::max<std::uint64_t>(1, s.strides.total()));

  auto page_summary = [](const char* label,
                         const std::unordered_map<std::uint64_t,
                                                  std::uint64_t>& pages,
                         const trace::ReuseDistance& reuse,
                         std::uint64_t tlb_entries) {
    std::uint64_t hottest = 0;
    for (const auto& [page, count] : pages) {
      hottest = std::max(hottest, count);
    }
    std::cout << label << ": " << format_count(pages.size())
              << " pages touched, hottest " << format_count(hottest)
              << " touches; reuse distance < " << tlb_entries
              << " pages covers "
              << format_percent(reuse.coverage(tlb_entries))
              << " of warm accesses (" << format_count(reuse.cold_misses())
              << " cold)\n";
  };
  std::cout << "\n";
  // Coverage thresholds: the Opteron's 32-entry / 8-entry L1 DTLBs — the
  // paper's Table 1 geometry this analysis exists to explain.
  page_summary("4KB pages", s.touches_per_4k_page, s.reuse_4k, 32);
  page_summary("2MB pages", s.touches_per_2m_page, s.reuse_2m, 8);

  print_histogram("\nreuse-distance histogram (4KB pages):",
                  s.reuse_4k.histogram(),
                  std::max<std::uint64_t>(1, s.reuse_4k.touches() -
                                                 s.reuse_4k.cold_misses()));
  print_histogram("reuse-distance histogram (2MB pages):",
                  s.reuse_2m.histogram(),
                  std::max<std::uint64_t>(1, s.reuse_2m.touches() -
                                                 s.reuse_2m.cold_misses()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::string cmd =
      opts.positional().empty() ? "" : opts.positional().front();
  try {
    if (cmd == "record") return cmd_record(opts);
    if (cmd == "replay") return cmd_replay(opts);
    if (cmd == "multilane") return cmd_multilane(opts);
    if (cmd == "bench") return cmd_bench(opts);
    if (cmd == "stats") return cmd_stats(opts);
  } catch (const trace::TraceError& e) {
    std::cerr << "trace error: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "usage: trace_tools <record|replay|multilane|bench|stats> "
               "[options]\n"
               "  record    --kernel=CG --klass=S --threads=4 --pages=4KB|2MB "
               "--out=FILE\n"
               "  replay    --in=FILE [--platform=opteron|xeon] [--check] "
               "[--strategy=analytic|recorded]\n"
               "  multilane --in=FILE [--seed=N] [--check]\n"
               "  bench     --in=FILE[,FILE...] [--repeat=10] "
               "[--json-out=FILE]\n"
               "  stats     --in=FILE\n";
  return 2;
}
