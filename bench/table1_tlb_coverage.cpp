// Reproduces Table 1: "Processor TLB Sizes and Coverage" — the TLB entry
// counts of the Intel Xeon and AMD Opteron platforms for 4 KB and 2 MB
// pages, and the address-space reach (coverage) of the data TLBs. The
// values come from the same ProcessorSpec structures that parameterise the
// machine simulator, so this table *is* the simulated hardware.
#include "bench/bench_common.hpp"

using namespace lpomp;

namespace {

std::string entries_or_dash(const tlb::TlbGeometry& g) {
  return g.present() ? std::to_string(g.entries) : "-";
}

}  // namespace

int main() {
  const sim::ProcessorSpec xeon = sim::ProcessorSpec::xeon_ht();
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();

  std::cout << "Table 1: Processor TLB Sizes and Coverage\n";
  std::cout << "(entry counts per structure; coverage = largest data-TLB "
               "reach for the page size)\n\n";

  TextTable table({"", xeon.name, opteron.name});
  table.add_row({"ITLB (4KB) Size", std::to_string(xeon.itlb.small4k.entries),
                 std::to_string(opteron.itlb.small4k.entries)});
  table.add_row(
      {"L1DTLB (4KB) Size", std::to_string(xeon.l1_dtlb.small4k.entries),
       std::to_string(opteron.l1_dtlb.small4k.entries)});
  table.add_row(
      {"L1DTLB (2MB) Size", std::to_string(xeon.l1_dtlb.large2m.entries),
       std::to_string(opteron.l1_dtlb.large2m.entries)});
  table.add_row({"L2DTLB (4KB) Size",
                 xeon.l2_dtlb ? entries_or_dash(xeon.l2_dtlb->small4k) : "-",
                 opteron.l2_dtlb ? entries_or_dash(opteron.l2_dtlb->small4k)
                                 : "-"});
  table.add_row({"L2DTLB (2MB) Size",
                 xeon.l2_dtlb ? entries_or_dash(xeon.l2_dtlb->large2m) : "-",
                 opteron.l2_dtlb ? entries_or_dash(opteron.l2_dtlb->large2m)
                                 : "-"});
  table.add_row({"DTLB (4KB) Coverage",
                 format_bytes(xeon.dtlb_coverage(PageKind::small4k)),
                 format_bytes(opteron.dtlb_coverage(PageKind::small4k))});
  table.add_row({"DTLB (2MB) Coverage",
                 format_bytes(xeon.dtlb_coverage(PageKind::large2m)),
                 format_bytes(opteron.dtlb_coverage(PageKind::large2m))});
  table.print();

  std::cout << "\nPaper values: Xeon DTLB 128x4KB / 32x2MB -> 512KB / 64MB "
               "coverage;\nOpteron L1 DTLB 32x4KB / 8x2MB, L2 DTLB 512x4KB "
               "(no 2MB entries) -> 16MB 2MB-coverage.\n";
  return 0;
}
