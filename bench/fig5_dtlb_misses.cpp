// Reproduces Figure 5: data-TLB misses at 4 threads on the Opteron with
// 4 KB and 2 MB pages, normalised to the 4 KB count per application (the
// OProfile "L1 and L2 DTLB miss" event — misses that required a hardware
// page walk).
//
// Shape target (paper §4.4): CG, SP and MG drop by a factor of 10 or more;
// BT and FT by only ~2-3×, matching their smaller performance gains.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const auto threads = static_cast<unsigned>(opts.get_int("threads", 4));
  const sim::ProcessorSpec opteron = sim::ProcessorSpec::opteron270();

  std::cout << "Figure 5: Normalized DTLB misses at " << threads
            << " threads, " << opteron.name << " (class "
            << npb::klass_name(klass) << ")\n\n";

  TextTable table({"Application", "4KB misses", "2MB misses",
                   "normalized 4KB", "normalized 2MB", "reduction factor"});
  for (npb::Kernel k : bench::kernels_from(opts)) {
    const npb::NpbResult r4k =
        bench::run_checked(k, klass, opteron, threads, PageKind::small4k);
    const npb::NpbResult r2m =
        bench::run_checked(k, klass, opteron, threads, PageKind::large2m);
    const auto m4k = r4k.profile.count(prof::ProfileReport::kDtlbWalk);
    const auto m2m = r2m.profile.count(prof::ProfileReport::kDtlbWalk);
    const double norm2m =
        m4k ? static_cast<double>(m2m) / static_cast<double>(m4k) : 0.0;
    table.add_row({npb::kernel_name(k), format_count(m4k), format_count(m2m),
                   "1.00", format_ratio(norm2m),
                   m2m ? format_ratio(static_cast<double>(m4k) /
                                      static_cast<double>(m2m))
                       : "inf"});
  }
  table.print();
  std::cout << "\nPaper: CG/SP/MG reduced ~10x or more; BT/FT by ~2-3x.\n";
  return 0;
}
