// Reproduces Figure 5: data-TLB misses at 4 threads on the Opteron with
// 4 KB and 2 MB pages, normalised to the 4 KB count per application (the
// OProfile "L1 and L2 DTLB miss" event — misses that required a hardware
// page walk).
//
// Runs through the experiment engine (--workers= parallel tasks,
// --json=fig5.json records); the walk counts come from the per-run JSON
// counters (dtlb_walks_4k + dtlb_walks_2m).
//
// Shape target (paper §4.4): CG, SP and MG drop by a factor of 10 or more;
// BT and FT by only ~2-3×, matching their smaller performance gains.
#include "bench/bench_common.hpp"

using namespace lpomp;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const npb::Klass klass = bench::klass_by_name(opts.get("klass", "R"));
  const auto threads = static_cast<unsigned>(opts.get_int("threads", 4));

  exec::SweepSpec spec = exec::SweepSpec::figure5(klass, threads);
  spec.kernels = bench::kernels_from(opts);

  // --paging= swaps the 4KB/2MB columns for one walk-count column per
  // policy, normalised to the first policy listed (layout axis fixed at
  // 4 KB — every policy reinterprets the same address stream).
  const bool paging_axis = !opts.get("paging", "").empty();
  if (paging_axis) {
    spec.page_kinds = {PageKind::small4k};
    spec.paging_policies = bench::paging_from(opts);
  }

  exec::ExperimentEngine engine = bench::make_engine(opts);
  const exec::SweepResult result = engine.run(spec);
  bench::require_all_verified(result);

  const std::string opteron = sim::ProcessorSpec::opteron270().name;
  std::cout << "Figure 5: Normalized DTLB misses at " << threads
            << " threads, " << opteron << " (class " << npb::klass_name(klass)
            << "; " << result.workers << " workers)\n\n";

  const auto walks = [](const exec::RunRecord& r) {
    return r.dtlb_walks_4k + r.dtlb_walks_2m + r.dtlb_walks_1g;
  };
  if (paging_axis) {
    std::vector<std::string> header = {"Application"};
    for (const paging::PolicySpec& p : spec.paging_policies) {
      header.push_back(std::string(p.name()) + " walks");
      header.push_back(std::string(p.name()) + " norm");
    }
    TextTable table(header);
    for (npb::Kernel k : spec.kernels) {
      const std::string kernel = npb::kernel_name(k);
      const exec::RunRecord* base = result.find(
          kernel, opteron, threads, "4KB", spec.paging_policies.front().name());
      std::vector<std::string> row = {kernel};
      for (const paging::PolicySpec& p : spec.paging_policies) {
        const exec::RunRecord* r =
            result.find(kernel, opteron, threads, "4KB", p.name());
        if (r == nullptr || base == nullptr) {
          row.insert(row.end(), {"-", "-"});
          continue;
        }
        const count_t b = walks(*base);
        row.push_back(format_count(walks(*r)));
        row.push_back(b ? format_ratio(static_cast<double>(walks(*r)) /
                                       static_cast<double>(b))
                        : "-");
      }
      table.add_row(std::move(row));
    }
    table.print();
    bench::write_json(opts, result);
    return 0;
  }

  TextTable table({"Application", "4KB misses", "2MB misses",
                   "normalized 4KB", "normalized 2MB", "reduction factor"});
  for (npb::Kernel k : spec.kernels) {
    const std::string kernel = npb::kernel_name(k);
    const exec::RunRecord* r4k = result.find(kernel, opteron, threads, "4KB");
    const exec::RunRecord* r2m = result.find(kernel, opteron, threads, "2MB");
    const count_t m4k = walks(*r4k);
    const count_t m2m = walks(*r2m);
    const double norm2m =
        m4k ? static_cast<double>(m2m) / static_cast<double>(m4k) : 0.0;
    table.add_row({kernel, format_count(m4k), format_count(m2m), "1.00",
                   format_ratio(norm2m),
                   m2m ? format_ratio(static_cast<double>(m4k) /
                                      static_cast<double>(m2m))
                       : "inf"});
  }
  table.print();
  std::cout << "\nPaper: CG/SP/MG reduced ~10x or more; BT/FT by ~2-3x.\n";
  bench::write_json(opts, result);
  return 0;
}
