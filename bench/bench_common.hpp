// Shared plumbing for the paper-reproduction bench harnesses: platform
// selection, runtime-config construction, and result formatting. Every
// harness runs with sensible defaults (`for b in build/bench/*; do $b; done`
// regenerates every table/figure) and honours --klass= / --kernels= /
// LPOMP_* environment overrides.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "npb/npb.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace lpomp::bench {

inline sim::ProcessorSpec platform_by_name(const std::string& name) {
  if (name == "xeon") return sim::ProcessorSpec::xeon_ht();
  return sim::ProcessorSpec::opteron270();
}

inline npb::Klass klass_by_name(const std::string& name) {
  if (name == "S") return npb::Klass::S;
  if (name == "W") return npb::Klass::W;
  if (name == "A") return npb::Klass::A;
  if (name == "B") return npb::Klass::B;
  return npb::Klass::R;
}

inline std::vector<npb::Kernel> kernels_from(const Options& opts) {
  const std::string list = opts.get("kernels", "BT,CG,FT,SP,MG");
  std::vector<npb::Kernel> out;
  for (npb::Kernel k : npb::all_kernels()) {
    if (list.find(npb::kernel_name(k)) != std::string::npos) out.push_back(k);
  }
  return out;
}

/// Runtime config for one simulated run.
inline core::RuntimeConfig make_config(const sim::ProcessorSpec& spec,
                                       unsigned threads, PageKind kind) {
  core::RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.page_kind = kind;
  cfg.sim = core::SimConfig{spec, sim::CostModel{}, 0x5eedULL};
  return cfg;
}

/// One kernel run; aborts loudly if the kernel fails verification, since a
/// wrong answer invalidates the timing.
inline npb::NpbResult run_checked(npb::Kernel kernel, npb::Klass klass,
                                  const sim::ProcessorSpec& spec,
                                  unsigned threads, PageKind kind) {
  npb::NpbResult r =
      npb::run_kernel(kernel, klass, make_config(spec, threads, kind));
  if (!r.verified) {
    std::cerr << "VERIFICATION FAILED: " << npb::kernel_name(kernel) << "."
              << npb::klass_name(klass) << " (" << spec.name << ", "
              << page_kind_name(kind) << ", " << threads
              << "T): " << r.verification_detail << "\n";
    std::exit(2);
  }
  return r;
}

inline std::string improvement(double t4k, double t2m) {
  return format_percent((t4k - t2m) / t4k);
}

}  // namespace lpomp::bench
