// Shared plumbing for the paper-reproduction bench harnesses: platform
// selection, runtime-config construction, and result formatting. Every
// harness runs with sensible defaults (`for b in build/bench/*; do $b; done`
// regenerates every table/figure) and honours --klass= / --kernels= /
// LPOMP_* environment overrides.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "npb/npb.hpp"
#include "paging/policy.hpp"
#include "support/format.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace lpomp::bench {

inline sim::ProcessorSpec platform_by_name(const std::string& name) {
  if (name == "xeon") return sim::ProcessorSpec::xeon_ht();
  if (name == "modern") return sim::ProcessorSpec::modern();
  return sim::ProcessorSpec::opteron270();
}

/// Parses --paging= as a comma-separated paging-policy list ("native,
/// hugetlb2m,huge1g,thp"). Unknown tokens abort with the valid set; an
/// absent flag yields the single native (identity) policy, preserving
/// historical behaviour. --thp-seed/--thp-frag/--thp-growth/--thp-interval
/// override the THP fragmentation model for every thp entry in the list
/// (all four are part of the result fingerprint).
inline std::vector<paging::PolicySpec> paging_from(const Options& opts) {
  const std::string list = opts.get("paging", "native");
  paging::ThpParams thp;
  // base 0: --thp-seed accepts decimal or 0x-prefixed hex.
  thp.frag_seed = std::strtoull(
      opts.get("thp-seed", std::to_string(thp.frag_seed)).c_str(), nullptr, 0);
  thp.frag_base = opts.get_double("thp-frag", thp.frag_base);
  thp.frag_growth = opts.get_double("thp-growth", thp.frag_growth);
  thp.compaction_interval = static_cast<std::uint32_t>(
      opts.get_int("thp-interval", thp.compaction_interval));
  std::vector<paging::PolicySpec> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    start = comma + 1;
    paging::Policy p;
    if (!paging::policy_from_name(token, p)) {
      std::cerr << "unknown paging policy '" << token << "' in --paging="
                << list << " (valid: native,base4k,hugetlb2m,huge1g,thp)\n";
      std::exit(2);
    }
    paging::PolicySpec spec;
    spec.policy = p;
    if (p == paging::Policy::thp) spec.thp = thp;
    out.push_back(spec);
  }
  return out;
}

inline npb::Klass klass_by_name(const std::string& name) {
  if (name == "S") return npb::Klass::S;
  if (name == "W") return npb::Klass::W;
  if (name == "A") return npb::Klass::A;
  if (name == "B") return npb::Klass::B;
  return npb::Klass::R;
}

/// Canonical comma-joined kernel list ("BT,CG,FT,SP,MG,GUPS,GT,PC") — the
/// --kernels= default and the valid set shown on a parse error.
inline std::string all_kernel_names() {
  std::string names;
  for (npb::Kernel k : npb::all_kernels()) {
    if (!names.empty()) names += ',';
    names += npb::kernel_name(k);
  }
  return names;
}

/// Parses --kernels= as an exact comma-separated list ("CG,FT"). Unknown or
/// empty tokens abort with a clear message instead of being silently
/// dropped; kernels run in canonical (all_kernels) order, deduplicated.
inline std::vector<npb::Kernel> kernels_from(const Options& opts) {
  const std::string list = opts.get("kernels", all_kernel_names());
  std::vector<bool> wanted(npb::all_kernels().size(), false);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    start = comma + 1;
    bool known = false;
    const std::vector<npb::Kernel> all = npb::all_kernels();
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (token == npb::kernel_name(all[i])) {
        wanted[i] = true;
        known = true;
        break;
      }
    }
    if (!known) {
      std::cerr << "unknown kernel '" << token << "' in --kernels=" << list
                << " (valid: " << all_kernel_names() << ")\n";
      std::exit(2);
    }
  }
  std::vector<npb::Kernel> out;
  const std::vector<npb::Kernel> all = npb::all_kernels();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (wanted[i]) out.push_back(all[i]);
  }
  return out;
}

/// Runtime config for one simulated run.
inline core::RuntimeConfig make_config(const sim::ProcessorSpec& spec,
                                       unsigned threads, PageKind kind) {
  core::RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.page_kind = kind;
  cfg.sim = core::SimConfig{spec, sim::CostModel{}, 0x5eedULL};
  return cfg;
}

/// One kernel run; aborts loudly if the kernel fails verification, since a
/// wrong answer invalidates the timing.
inline npb::NpbResult run_checked(npb::Kernel kernel, npb::Klass klass,
                                  const sim::ProcessorSpec& spec,
                                  unsigned threads, PageKind kind) {
  npb::NpbResult r =
      npb::run_kernel(kernel, klass, make_config(spec, threads, kind));
  if (!r.verified) {
    std::cerr << "VERIFICATION FAILED: " << npb::kernel_name(kernel) << "."
              << npb::klass_name(klass) << " (" << spec.name << ", "
              << page_kind_name(kind) << ", " << threads
              << "T): " << r.verification_detail << "\n";
    std::exit(2);
  }
  return r;
}

inline std::string improvement(double t4k, double t2m) {
  return format_percent((t4k - t2m) / t4k);
}

// --- experiment-engine plumbing (parallel harnesses) -------------------------

/// The sweep's execution strategy from --strategy=live|recorded|multilane|
/// analytic|auto (default auto). The historical spellings remain as
/// back-compat aliases — --no-trace → live, --no-multilane → recorded,
/// --no-analytic → multilane — each printing the --strategy= equivalent so
/// scripts migrate themselves. Results are bit-identical under every
/// strategy.
inline exec::Strategy strategy_from(const Options& opts) {
  const std::string name = opts.get("strategy", "");
  if (!name.empty()) {
    const std::optional<exec::Strategy> s = exec::strategy_from_name(name);
    if (!s) {
      std::cerr << "unknown --strategy=" << name
                << " (valid: live, recorded, multilane, analytic, auto)\n";
      std::exit(2);
    }
    return *s;
  }
  const bool no_trace = opts.get_flag("no-trace");
  const bool no_multilane = opts.get_flag("no-multilane");
  const bool no_analytic = opts.get_flag("no-analytic");
  if (!no_trace && !no_multilane && !no_analytic) return exec::Strategy::Auto;
  const exec::Strategy s = no_trace        ? exec::Strategy::Live
                           : no_multilane  ? exec::Strategy::Recorded
                                           : exec::Strategy::Multilane;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::cerr << "note: --no-trace/--no-multilane/--no-analytic are "
                 "deprecated; this invocation is --strategy="
              << exec::strategy_name(s) << "\n";
  }
  return s;
}

/// Engine sized from --workers= / LPOMP_WORKERS (0 → one per host core);
/// --trace-store-mb= bounds the trace store backing trace-backed sweeps.
/// The default must fit the largest single class-R stream (a 1-thread
/// BT/FT trace runs to several hundred MB): a trace larger than the whole
/// budget is never stored, and its second use silently re-records.
/// --strategy= picks the execution strategy (strategy_from above);
/// --store-dir= layers the disk-persistent result store under the LRU so
/// results survive the process. Results are bit-identical under any
/// combination.
inline exec::ExperimentEngine make_engine(const Options& opts) {
  exec::ExperimentEngine::Config cfg;
  cfg.workers = static_cast<unsigned>(opts.get_int("workers", 0));
  cfg.trace_store_bytes =
      MiB(static_cast<std::size_t>(opts.get_int("trace-store-mb", 2048)));
  cfg.strategy = strategy_from(opts);
  cfg.store_dir = opts.get("store-dir", "");
  // --topology=SxC fixes the pool's socket × core shape (and its worker
  // count) independently of the host, e.g. --topology=2x2 in CI identity
  // checks; absent, the shape is detected (flat 1×N fallback).
  const std::string topo = opts.get("topology", "");
  if (!topo.empty()) {
    try {
      cfg.topology = exec::Topology::parse(topo);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }
  return exec::ExperimentEngine(cfg);
}

/// Trace provenance counts of a sweep: how many records came from each of
/// "live", "record", "replay" (interpreted), "analytic" (compiled-plan
/// fast-forward replay), "lane" (fused multi-lane follower) and "fallback"
/// (rejected trace re-run live).
struct TraceProvenance {
  std::size_t live = 0;
  std::size_t record = 0;
  std::size_t replay = 0;
  std::size_t analytic = 0;
  std::size_t lane = 0;
  std::size_t fallback = 0;
};

inline TraceProvenance trace_provenance(const exec::SweepResult& result) {
  TraceProvenance p;
  for (const exec::RunRecord& r : result.records) {
    if (r.trace_source == "record") {
      ++p.record;
    } else if (r.trace_source == "replay") {
      ++p.replay;
    } else if (r.trace_source == "analytic") {
      ++p.analytic;
    } else if (r.trace_source == "lane") {
      ++p.lane;
    } else if (r.trace_source == "fallback") {
      ++p.fallback;
    } else {
      ++p.live;
    }
  }
  return p;
}

/// Aborts loudly if any run of the sweep failed or mis-verified — the
/// engine-level analogue of run_checked (a wrong answer invalidates the
/// timing, so no table is printed from a bad sweep).
inline void require_all_verified(const exec::SweepResult& result) {
  for (const exec::RunRecord& r : result.records) {
    if (!r.ok) {
      std::cerr << "RUN FAILED: " << r.kernel << "." << r.klass << " ("
                << r.platform << ", " << r.page_kind << ", " << r.threads
                << "T): " << r.error << "\n";
      std::exit(2);
    }
    if (!r.verified) {
      std::cerr << "VERIFICATION FAILED: " << r.kernel << "." << r.klass
                << " (" << r.platform << ", " << r.page_kind << ", "
                << r.threads << "T)\n";
      std::exit(2);
    }
  }
}

/// Writes the sweep's JSON document to --json=<path> when given. By default
/// only deterministic fields are emitted, so two invocations with different
/// --workers= diff byte-identically; --json-host adds wall times and cache
/// provenance.
inline void write_json(const Options& opts, const exec::SweepResult& result) {
  const std::string path = opts.get("json", "");
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write --json=" << path << "\n";
    std::exit(2);
  }
  os << result.to_json(opts.get_flag("json-host")) << "\n";
  std::cout << "\nwrote " << path << " (" << result.records.size()
            << " runs)\n";
}

}  // namespace lpomp::bench
